#include "hash/level_hashing.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table = LevelHashTable<Cell16, nvm::DirectPM>;

class LevelHashingTest : public ::testing::Test, public test::TableFixture<Table> {};

TEST_F(LevelHashingTest, GeometryIsTwoToOne) {
  Table::Params p{.top_buckets = 64};
  EXPECT_EQ(Table::total_cells(p), (64u + 32u) * 4u);
  init(p);
  EXPECT_EQ(table().capacity(), 384u);
}

TEST_F(LevelHashingTest, InsertFindEraseRoundTrip) {
  init(Table::Params{.top_buckets = 64});
  EXPECT_TRUE(table().insert(3, 30));
  EXPECT_EQ(*table().find(3), 30u);
  EXPECT_TRUE(table().erase(3));
  EXPECT_FALSE(table().find(3).has_value());
  EXPECT_EQ(table().count(), 0u);
}

TEST_F(LevelHashingTest, OverflowDescendsToBottomLevel) {
  init(Table::Params{.top_buckets = 8});
  const SeededHash h1(kDefaultSeed1);
  const SeededHash h2(kDefaultSeed2);
  // Keys whose BOTH top buckets coincide: after 8 slots (2 buckets x 4),
  // the 9th must land in the bottom level and stay findable.
  const u64 b1 = h1(1) & 7, b2 = h2(1) & 7;
  std::vector<u64> keys{1};
  for (u64 k = 2; keys.size() < 9 && k < 5'000'000; ++k) {
    if ((h1(k) & 7) == b1 && (h2(k) & 7) == b2) keys.push_back(k);
  }
  if (keys.size() < 9) GTEST_SKIP() << "not enough doubly-colliding keys";
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k));
  for (const u64 k : keys) EXPECT_EQ(*table().find(k), k);
}

TEST_F(LevelHashingTest, BoundedMovementRelocatesResidents) {
  init(Table::Params{.top_buckets = 256});
  Xoshiro256 rng(3);
  std::vector<u64> keys;
  while (table().stats().displacements == 0 && table().load_factor() < 0.85) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (table().insert(k, k * 2)) keys.push_back(k);
  }
  ASSERT_GT(table().stats().displacements, 0u);
  for (const u64 k : keys) {
    ASSERT_TRUE(table().find(k).has_value()) << k;
    EXPECT_EQ(*table().find(k), k * 2);
  }
}

TEST_F(LevelHashingTest, HighSpaceUtilization) {
  // Level hashing's selling point: > 0.85 utilisation at first failure.
  init(Table::Params{.top_buckets = 1024});
  Xoshiro256 rng(7);
  for (;;) {
    const u64 k = (rng.next() & Cell16::kMaxKey) | 1;
    if (!table().insert(k, 1)) break;
  }
  EXPECT_GT(table().load_factor(), 0.85);
}

TEST_F(LevelHashingTest, OracleComparisonWithChurn) {
  init(Table::Params{.top_buckets = 512});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(9);
  std::vector<u64> live;
  for (int step = 0; step < 6000; ++step) {
    const double r = rng.next_double();
    if (r < 0.5 && oracle.size() < 2000) {
      const u64 k = rng.next_below(1ull << 30) + 1;
      if (!oracle.count(k) && table().insert(k, k + 13)) {
        oracle[k] = k + 13;
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const u64 k = live[idx];
      if (r < 0.8) {
        ASSERT_TRUE(table().find(k).has_value());
        EXPECT_EQ(*table().find(k), oracle[k]);
      } else {
        EXPECT_TRUE(table().erase(k));
        oracle.erase(k);
        live[idx] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

TEST_F(LevelHashingTest, QueryProbesAtMostFourBuckets) {
  init(Table::Params{.top_buckets = 64});
  table().stats().clear();
  (void)table().find(123456);  // absent
  EXPECT_LE(table().stats().probes, 16u);  // 4 buckets x 4 slots
}

TEST_F(LevelHashingTest, RecoverRecounts) {
  init(Table::Params{.top_buckets = 64});
  for (u64 k = 1; k <= 100; ++k) table().insert(k, k);
  table().erase(50);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, 99u);
  EXPECT_EQ(report.cells_scanned, table().capacity());
}

}  // namespace
}  // namespace gh::hash
