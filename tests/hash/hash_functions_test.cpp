#include "hash/hash_functions.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace gh::hash {
namespace {

TEST(SeededHash, DeterministicPerSeed) {
  const SeededHash h(42);
  EXPECT_EQ(h(u64{123}), h(u64{123}));
  EXPECT_EQ(h(Key128{1, 2}), h(Key128{1, 2}));
}

TEST(SeededHash, SeedsAreIndependent) {
  const SeededHash a(kDefaultSeed1), b(kDefaultSeed2);
  int same = 0;
  for (u64 k = 0; k < 1000; ++k) {
    if ((a(k) & 0xfff) == (b(k) & 0xfff)) ++same;
  }
  // ~1000/4096 expected collisions on 12 bits.
  EXPECT_LT(same, 30);
}

TEST(SeededHash, AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip ~32 of the 64 output bits.
  const SeededHash h(1);
  Xoshiro256 rng(9);
  double total_flipped = 0;
  int samples = 0;
  for (int i = 0; i < 200; ++i) {
    const u64 x = rng.next();
    for (u32 bit = 0; bit < 64; bit += 7) {
      const u64 d = h(x) ^ h(x ^ (1ull << bit));
      total_flipped += std::popcount(d);
      ++samples;
    }
  }
  const double mean = total_flipped / samples;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

TEST(SeededHash, UniformBucketDistribution) {
  const SeededHash h(kDefaultSeed1);
  constexpr u64 kBuckets = 64;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kKeys = 64000;
  for (u64 k = 0; k < kKeys; ++k) counts[h(k) & (kBuckets - 1)]++;
  for (const int c : counts) {
    EXPECT_GT(c, 800);   // expected 1000 ± noise
    EXPECT_LT(c, 1200);
  }
}

TEST(SeededHash, SequentialKeysDoNotCollide) {
  // Sequential integers (the RandomNum key shape) must spread out.
  const SeededHash h(kDefaultSeed1);
  std::set<u64> low_bits;
  for (u64 k = 0; k < 10000; ++k) low_bits.insert(h(k) & 0xffffffffull);
  EXPECT_EQ(low_bits.size(), 10000u);
}

TEST(SeededHash, Key128HalvesBothMatter) {
  const SeededHash h(3);
  EXPECT_NE(h(Key128{1, 0}), h(Key128{0, 1}));
  EXPECT_NE(h(Key128{1, 2}), h(Key128{2, 1}));
  EXPECT_NE(h(Key128{1, 2}), h(Key128{1, 3}));
}

TEST(Fmix64, BijectivityOverSample) {
  // fmix64 is a bijection on u64 — no two of a large sample may collide.
  std::set<u64> out;
  for (u64 i = 0; i < 100000; ++i) out.insert(fmix64(i));
  EXPECT_EQ(out.size(), 100000u);
}

TEST(Fmix64, ZeroIsNotFixedPointOfSeededUse) {
  const SeededHash h(kDefaultSeed1);
  EXPECT_NE(h(u64{0}), 0u);
}

}  // namespace
}  // namespace gh::hash
