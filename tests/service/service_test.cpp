// Sharded service front-end: routing, batched-ingest correctness and
// backpressure.
//
// The differential suites hold the service to the same contract as a
// single reference map: whatever mix of batches, clients and ring sizes
// the transport sees, the answers must match a scalar std::unordered_map
// applied in the same order. Batched and naive ingest modes must be
// observationally identical — the batching window is a performance
// lever, not a semantics change.
#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/span.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace gh::service {
namespace {

MapOptions small_map_options() {
  MapOptions o;
  o.initial_cells = 1u << 10;
  o.group_size = 16;
  o.flush_latency_ns = 0;
  return o;
}

ServiceOptions small_service_options() {
  ServiceOptions o;
  o.shards = 4;
  o.map_options = small_map_options();
  return o;
}

TEST(IngestRing, PushPopFifoAndFull) {
  IngestRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  WorkItem w;
  EXPECT_FALSE(ring.try_pop(w));
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(WorkItem{nullptr, i, 1}));
  }
  EXPECT_FALSE(ring.try_push(WorkItem{nullptr, 99, 1}));  // full = backpressure
  for (u32 i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(w));
    EXPECT_EQ(w.begin, i);
  }
  EXPECT_FALSE(ring.try_pop(w));
  // Wrap-around keeps working.
  EXPECT_TRUE(ring.try_push(WorkItem{nullptr, 5, 1}));
  ASSERT_TRUE(ring.try_pop(w));
  EXPECT_EQ(w.begin, 5u);
}

TEST(ShardService, EmptyBatchReturnsImmediately) {
  ShardServer server(small_service_options());
  Batch batch;
  server.execute(batch);
  EXPECT_TRUE(batch.responses().empty());
  server.stop();
}

TEST(ShardService, DifferentialVsReferenceMap) {
  // Single client, random mixed batches with per-batch distinct keys (so
  // grouped-by-kind execution equals sequential execution), checked
  // response-by-response against a reference map.
  for (const bool naive : {false, true}) {
    ServiceOptions opts = small_service_options();
    opts.naive = naive;
    ShardServer server(opts);
    std::unordered_map<u64, u64> reference;
    Xoshiro256 rng(7);
    const u32 kUniverse = 61;  // small → plenty of hits and re-puts
    Batch batch;
    for (u32 round = 0; round < 300; ++round) {
      batch.clear();
      // Distinct keys per batch: a shuffled prefix of the universe.
      std::vector<u64> ks(kUniverse);
      for (u32 i = 0; i < kUniverse; ++i) ks[i] = 1000 + i;
      for (u32 i = kUniverse - 1; i > 0; --i) std::swap(ks[i], ks[rng.next_below(i + 1)]);
      const u32 n = 1 + static_cast<u32>(rng.next_below(kUniverse));
      std::vector<Request>& reqs = batch.requests;
      for (u32 i = 0; i < n; ++i) {
        switch (rng.next_below(3)) {
          case 0: reqs.push_back(Request{Op::kGet, ks[i], 0}); break;
          case 1: reqs.push_back(Request{Op::kPut, ks[i], rng.next() | 1}); break;
          default: reqs.push_back(Request{Op::kErase, ks[i], 0}); break;
        }
      }
      server.execute(batch);
      const auto responses = batch.responses();
      ASSERT_EQ(responses.size(), n);
      for (u32 i = 0; i < n; ++i) {
        const Request& rq = reqs[i];
        const Response& rs = responses[i];
        switch (rq.op) {
          case Op::kGet: {
            const auto it = reference.find(rq.key);
            if (it == reference.end()) {
              EXPECT_EQ(rs.status, Status::kNotFound) << "round " << round;
            } else {
              EXPECT_EQ(rs.status, Status::kOk);
              EXPECT_EQ(rs.value, it->second);
            }
            break;
          }
          case Op::kPut:
            EXPECT_EQ(rs.status, Status::kOk);
            reference[rq.key] = rq.value;
            break;
          case Op::kErase:
            EXPECT_EQ(rs.status,
                      reference.erase(rq.key) ? Status::kOk : Status::kNotFound);
            break;
        }
      }
    }
    server.stop();
    const obs::Snapshot snap = server.snapshot();
    EXPECT_EQ(snap.size, reference.size());
    EXPECT_EQ(snap.source, "ShardServer");
    EXPECT_EQ(snap.per_shard.size(), 4u);
  }
}

TEST(ShardService, BatchGroupsByKindGetsBeforePutsBeforeErases) {
  // Documented window semantics: within one batch, a shard's requests
  // execute grouped by kind. A get and an erase of a key the same batch
  // also puts see the PRE-batch state; the put itself is applied.
  ShardServer server(small_service_options());
  Batch batch;
  batch.requests = {Request{Op::kPut, 42, 1}};
  server.execute(batch);

  batch.clear();
  batch.requests = {
      Request{Op::kGet, 42, 0},    // sees the pre-batch value…
      Request{Op::kPut, 42, 2},    // …then the put applies…
      Request{Op::kErase, 42, 0},  // …then the erase removes it.
  };
  server.execute(batch);
  const auto rs = batch.responses();
  EXPECT_EQ(rs[0].status, Status::kOk);
  EXPECT_EQ(rs[0].value, 1u);
  EXPECT_EQ(rs[1].status, Status::kOk);
  EXPECT_EQ(rs[2].status, Status::kOk);

  batch.clear();
  batch.requests = {Request{Op::kGet, 42, 0}};
  server.execute(batch);
  EXPECT_EQ(batch.responses()[0].status, Status::kNotFound);
}

TEST(ShardService, DuplicatePutsLastWinsWithinBatch) {
  ShardServer server(small_service_options());
  Batch batch;
  for (u64 v = 1; v <= 9; ++v) batch.requests.push_back(Request{Op::kPut, 77, v * 11});
  server.execute(batch);
  for (const Response& r : batch.responses()) EXPECT_EQ(r.status, Status::kOk);

  batch.clear();
  batch.requests = {Request{Op::kGet, 77, 0}};
  server.execute(batch);
  EXPECT_EQ(batch.responses()[0].status, Status::kOk);
  EXPECT_EQ(batch.responses()[0].value, 99u);
}

TEST(ShardService, MultiClientDisjointRangesAllLand) {
  ServiceOptions opts = small_service_options();
  ShardServer server(opts);
  constexpr u32 kClients = 4;
  constexpr u64 kPerClient = 2000;
  std::vector<std::thread> clients;
  for (u32 c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Batch batch;
      const u64 base = 1 + c * kPerClient;
      for (u64 k = 0; k < kPerClient;) {
        batch.clear();
        for (u32 b = 0; b < 97 && k < kPerClient; ++b, ++k) {
          batch.requests.push_back(Request{Op::kPut, base + k, base + k});
        }
        server.execute(batch);
        for (const Response& r : batch.responses()) {
          ASSERT_EQ(r.status, Status::kOk);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every key readable, value echoes key; the roll-up sums to the total.
  Batch batch;
  for (u32 c = 0; c < kClients; ++c) {
    const u64 base = 1 + c * kPerClient;
    batch.clear();
    for (u64 k = 0; k < kPerClient; ++k) {
      batch.requests.push_back(Request{Op::kGet, base + k, 0});
    }
    server.execute(batch);
    const auto rs = batch.responses();
    for (u64 k = 0; k < kPerClient; ++k) {
      ASSERT_EQ(rs[k].status, Status::kOk);
      ASSERT_EQ(rs[k].value, base + k);
    }
  }
  server.stop();
  const obs::Snapshot snap = server.snapshot();
  EXPECT_EQ(snap.size, kClients * kPerClient);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(snap.latency.find.count + snap.latency.insert.count, 0u);
  }
}

TEST(ShardService, TinyRingBackpressureNeverWedges) {
  // A 2-slot ring with a 1-item batching window under 4 concurrent
  // clients: every push contends, most spin. The run must complete with
  // correct answers — backpressure, not deadlock or loss.
  ServiceOptions opts = small_service_options();
  opts.ring_capacity = 2;
  opts.batch_window = 1;
  ShardServer server(opts);
  std::vector<std::thread> clients;
  std::atomic<u64> oks{0};
  for (u32 c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Batch batch;
      Xoshiro256 rng(c + 1);
      u64 local = 0;
      for (u32 round = 0; round < 200; ++round) {
        batch.clear();
        for (u32 i = 0; i < 32; ++i) {
          batch.requests.push_back(Request{Op::kPut, rng.next() | 1, i});
        }
        server.execute(batch);
        for (const Response& r : batch.responses()) local += r.status == Status::kOk;
      }
      oks += local;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(oks.load(), 4u * 200u * 32u);
  server.stop();
}

TEST(ShardService, RoutingMatchesConcurrentWrapperSeed) {
  // shard_of must be a pure function of (key, shards): pinned values so
  // the routing seed can never drift silently from the concurrent
  // wrappers' (which would split a key's history across shards after a
  // mixed deployment).
  for (const u64 key : {1ull, 42ull, 0xdeadbeefull, ~0ull}) {
    const u32 s = ShardServer::shard_of(key, 8);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(ShardServer::shard_of(key, 8), s);
    // Power-of-two masking: the 4-shard route is the 8-shard route mod 4
    // only when the hash's low bits route — document the mask contract.
    EXPECT_EQ(ShardServer::shard_of(key, 4), s & 3u);
  }
}

TEST(ShardService, NaiveAndBatchedProduceIdenticalResponses) {
  ServiceOptions batched_opts = small_service_options();
  ServiceOptions naive_opts = small_service_options();
  naive_opts.naive = true;
  ShardServer batched(batched_opts);
  ShardServer naive(naive_opts);
  Xoshiro256 rng(99);
  Batch b1, b2;
  for (u32 round = 0; round < 100; ++round) {
    b1.clear();
    b2.clear();
    // Distinct keys per batch (see DifferentialVsReferenceMap).
    std::vector<u64> ks(40);
    for (u32 i = 0; i < 40; ++i) ks[i] = 500 + i;
    for (u32 i = 39; i > 0; --i) std::swap(ks[i], ks[rng.next_below(i + 1)]);
    const u32 n = 1 + static_cast<u32>(rng.next_below(40));
    for (u32 i = 0; i < n; ++i) {
      const u32 kind = static_cast<u32>(rng.next_below(3));
      const Request rq{static_cast<Op>(kind), ks[i],
                       kind == 1 ? rng.next() | 1 : 0};
      b1.requests.push_back(rq);
      b2.requests.push_back(rq);
    }
    batched.execute(b1);
    naive.execute(b2);
    const auto r1 = b1.responses();
    const auto r2 = b2.responses();
    ASSERT_EQ(r1.size(), r2.size());
    for (u32 i = 0; i < n; ++i) {
      EXPECT_EQ(r1[i].status, r2[i].status) << "round " << round << " i " << i;
      EXPECT_EQ(r1[i].value, r2[i].value);
    }
  }
  batched.stop();
  naive.stop();
  EXPECT_EQ(batched.snapshot().size, naive.snapshot().size);
}

TEST(ShardService, FullTracingEmitsLinkedRequestRingWaitVisitAndOpSpans) {
  if (!obs::kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  // trace_mode=kFull stamps every batch; after the run the global span
  // rings must contain complete request trees: request (root, parent 0)
  // → ring_wait + shard_visit children → op spans under the visit.
  obs::SpanCollector& collector = obs::SpanCollector::global();
  (void)collector.drain_all();  // discard anything earlier tests left behind

  ServiceOptions opts = small_service_options();
  opts.trace_mode = obs::TraceMode::kFull;
  opts.map_options.latency_sample_shift = 0;  // phases populate densely
  ShardServer server(opts);
  Xoshiro256 rng(3);
  Batch batch;
  for (u32 round = 0; round < 50; ++round) {
    batch.clear();
    for (u32 i = 0; i < 16; ++i) {
      const u64 k = 1 + rng.next_below(500);
      switch (rng.next_below(3)) {
        case 0: batch.requests.push_back(Request{Op::kGet, k, 0}); break;
        case 1: batch.requests.push_back(Request{Op::kPut, k, k}); break;
        default: batch.requests.push_back(Request{Op::kErase, k, 0}); break;
      }
    }
    server.execute(batch);
  }
  server.stop();
  const std::vector<obs::SpanRecord> spans = collector.drain_all();
  ASSERT_FALSE(spans.empty());

  // Index the forest. Roots are kRequest spans with parent 0.
  std::unordered_map<u32, const obs::SpanRecord*> by_id;
  u64 requests = 0, ring_waits = 0, visits = 0, ops = 0;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_GE(s.t_end, s.t_start);
    EXPECT_LT(s.kind, obs::kSpanKinds);
    by_id[s.span_id] = &s;
    switch (static_cast<obs::SpanKind>(s.kind)) {
      case obs::SpanKind::kRequest:
        EXPECT_EQ(s.parent_id, 0u) << "request spans are roots";
        ++requests;
        break;
      case obs::SpanKind::kRingWait: ++ring_waits; break;
      case obs::SpanKind::kShardVisit: ++visits; break;
      case obs::SpanKind::kOpInsert:
      case obs::SpanKind::kOpFind:
      case obs::SpanKind::kOpErase: ++ops; break;
      default: break;
    }
  }
  EXPECT_GT(requests, 0u);
  EXPECT_GT(ring_waits, 0u);
  EXPECT_GT(visits, 0u);
  EXPECT_GT(ops, 0u);

  // Linkage: every surviving non-root span whose parent also survived
  // must agree on trace_id, and the child kinds sit where the
  // propagation puts them (ring_wait/visit under request, ops under a
  // visit, phase children under an op).
  u64 linked = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_id == 0) continue;
    const auto it = by_id.find(s.parent_id);
    if (it == by_id.end()) continue;  // parent overwritten in the ring
    const obs::SpanRecord& parent = *it->second;
    EXPECT_EQ(parent.trace_id, s.trace_id)
        << "child " << span_kind_name(static_cast<obs::SpanKind>(s.kind))
        << " crossed traces";
    switch (static_cast<obs::SpanKind>(s.kind)) {
      case obs::SpanKind::kRingWait:
      case obs::SpanKind::kShardVisit:
      case obs::SpanKind::kWake:
        EXPECT_EQ(parent.kind, static_cast<u8>(obs::SpanKind::kRequest));
        break;
      case obs::SpanKind::kOpInsert:
      case obs::SpanKind::kOpFind:
      case obs::SpanKind::kOpErase:
      case obs::SpanKind::kOpMigrate:
      case obs::SpanKind::kOpOther:
        EXPECT_EQ(parent.kind, static_cast<u8>(obs::SpanKind::kShardVisit));
        break;
      case obs::SpanKind::kPhaseProbe:
      case obs::SpanKind::kPhasePersist:
      case obs::SpanKind::kPhaseFence:
      case obs::SpanKind::kPhaseMigrateHelp:
        EXPECT_GE(parent.kind, static_cast<u8>(obs::SpanKind::kOpInsert));
        EXPECT_LE(parent.kind, static_cast<u8>(obs::SpanKind::kOpOther));
        break;
      default: break;
    }
    ++linked;
  }
  EXPECT_GT(linked, 0u) << "no parent-child pair survived the rings";

  // The phase accumulators saw the same run: attributed time exists and
  // the ring-wait bucket (worker-side attribution) is populated.
  const obs::Snapshot snap = server.snapshot();
  EXPECT_GT(snap.phases.total_op_ns(), 0u);
  u64 ring_wait_ns = 0;
  for (const auto& row : snap.phases.rows) {
    ring_wait_ns += row.phase_ns[static_cast<usize>(obs::Phase::kRingWait)];
  }
  EXPECT_GT(ring_wait_ns, 0u);
}

TEST(ShardService, TracingOffEmitsNothing) {
  obs::SpanCollector& collector = obs::SpanCollector::global();
  (void)collector.drain_all();

  ShardServer server(small_service_options());  // trace_mode defaults to kOff
  Batch batch;
  for (u64 k = 1; k <= 500; ++k) batch.requests.push_back(Request{Op::kPut, k, k});
  server.execute(batch);
  server.stop();
  EXPECT_TRUE(collector.drain_all().empty());
}

}  // namespace
}  // namespace gh::service
