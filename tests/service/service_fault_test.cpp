// Service-level fault injection (satellite of the sharded front-end).
//
// Kill one shard's worker mid-batch with a FaultFs SimulatedCrash fired
// inside that shard's expansion publish, and hold the server to the
// degradation contract:
//   * the dying visit answers kShardDown (never wedges the ingest ring),
//   * later requests routed to the dead shard answer kShardDown fast,
//   * every other shard keeps serving kOk,
//   * the server stops cleanly,
//   * reopening the dead shard's file runs recovery and the flight
//     recorder names the dying expand as in flight at the crash.
// A second suite swaps the crash for syscall-style failures (kFail on
// the expansion temp file): the shard must DEGRADE per the PR 3
// MapDegradedError contract — puts answer kDegraded, reads stay kOk,
// nothing dies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/group_hash_map.hpp"
#include "nvm/crash_point.hpp"
#include "nvm/fault_fs.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace gh::service {
namespace {

namespace fs = std::filesystem;

std::string make_data_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ServiceOptions fault_service_options(const std::string& data_dir) {
  ServiceOptions o;
  o.shards = 4;
  o.data_dir = data_dir;
  // Tiny shards so the first few hundred puts force an expansion.
  o.map_options.initial_cells = 64;
  o.map_options.group_size = 8;
  o.map_options.flush_latency_ns = 0;
  return o;
}

/// Crash (simulated power failure) at the Nth filesystem step whose path
/// mentions `needle`. Thread-safe: workers of every shard call on_step
/// concurrently, only the matching shard's steps count.
struct PathCrashFs : nvm::FsPolicy {
  std::string needle;
  usize crash_after = 0;
  std::atomic<usize> seen{0};

  Decision on_step(const nvm::FsStep& step) override {
    if (step.path.find(needle) != std::string::npos ||
        step.path2.find(needle) != std::string::npos) {
      if (seen.fetch_add(1, std::memory_order_relaxed) == crash_after) {
        throw nvm::SimulatedCrash{};
      }
    }
    return Decision::kProceed;
  }
};

/// Fail (syscall error, not crash) every step touching an expansion temp
/// file, starving expand() the way ENOSPC would.
struct ExpandFailFs : nvm::FsPolicy {
  Decision on_step(const nvm::FsStep& step) override {
    if (step.path.find(".expand") != std::string::npos ||
        step.path2.find(".expand") != std::string::npos) {
      return Decision::kFail;
    }
    return Decision::kProceed;
  }
};

/// Drive distinct-key puts until `predicate(status_counts)` or the key
/// budget runs out. Returns every (key, status) answered.
struct PumpResult {
  u64 ok = 0;
  u64 degraded = 0;
  u64 shard_down = 0;
  std::vector<u64> ok_keys;
};

template <typename StopFn>
PumpResult pump_puts(ShardServer& server, u64 first_key, u64 max_keys, StopFn stop) {
  PumpResult r;
  Batch batch;
  u64 key = first_key;
  const u64 last = first_key + max_keys;
  while (key < last) {
    batch.clear();
    for (u32 i = 0; i < 32 && key < last; ++i, ++key) {
      batch.requests.push_back(Request{Op::kPut, key, key * 3});
    }
    server.execute(batch);
    const auto responses = batch.responses();
    for (usize i = 0; i < responses.size(); ++i) {
      switch (responses[i].status) {
        case Status::kOk:
          r.ok++;
          r.ok_keys.push_back(batch.requests[i].key);
          break;
        case Status::kDegraded: r.degraded++; break;
        case Status::kShardDown: r.shard_down++; break;
        default: break;
      }
    }
    if (stop(r)) break;
  }
  return r;
}

TEST(ServiceFault, WorkerCrashMidBatchAnswersShardDownAndNeverWedges) {
  const std::string dir = make_data_dir("gh_service_fault_crash");
  const std::string victim_file = "shard1.gh";
  constexpr u32 kVictim = 1;

  std::string victim_path;
  {
    ShardServer server(fault_service_options(dir));

    // Crash shard 1's worker at the FIRST filesystem step of its first
    // expansion (the tmp-file create of the publish protocol). Installed
    // after construction so the initial shard-file creates pass.
    PathCrashFs policy;
    policy.needle = victim_file;
    const nvm::ScopedFsPolicy installed(&policy);

    const PumpResult crash_phase = pump_puts(
        server, /*first_key=*/1, /*max_keys=*/100'000,
        [](const PumpResult& r) { return r.shard_down > 0; });
    ASSERT_GT(crash_phase.shard_down, 0u)
        << "expansion crash never fired (ok=" << crash_phase.ok << ")";
    EXPECT_TRUE(server.shard_down(kVictim));

    // The ring must keep draining: requests to the dead shard answer
    // kShardDown, every other shard still serves.
    Batch batch;
    u64 live_ok = 0, dead_down = 0;
    for (u64 key = 200'000; key < 201'000; ++key) {
      batch.clear();
      batch.requests.push_back(Request{Op::kPut, key, key});
      server.execute(batch);
      const Status s = batch.responses()[0].status;
      if (ShardServer::shard_of(key, server.shards()) == kVictim) {
        EXPECT_EQ(s, Status::kShardDown);
        dead_down++;
      } else {
        EXPECT_EQ(s, Status::kOk);
        live_ok++;
      }
    }
    EXPECT_GT(live_ok, 0u);
    EXPECT_GT(dead_down, 0u);

    // Keys that were acknowledged on live shards still read back.
    for (const u64 key : crash_phase.ok_keys) {
      if (ShardServer::shard_of(key, server.shards()) == kVictim) continue;
      batch.clear();
      batch.requests.push_back(Request{Op::kGet, key, 0});
      server.execute(batch);
      ASSERT_EQ(batch.responses()[0].status, Status::kOk);
    }

    server.stop();  // clean teardown with a dead shard
    victim_path = dir + "/" + victim_file;
  }

  // Reopen the dead shard's file: recovery must succeed, and the flight
  // recorder must name the dying expand as in flight at the crash.
  ASSERT_TRUE(fs::exists(victim_path));
  MapOptions reopen_opts;
  reopen_opts.initial_cells = 64;
  reopen_opts.group_size = 8;
  auto reopened = GroupHashMap::open(victim_path, reopen_opts);
  if constexpr (obs::kEnabled) {
    const auto& scan = reopened.flight_scan_on_open();
    EXPECT_EQ(scan.records_torn, 0u);
    bool expand_in_flight = false;
    for (const auto& op : scan.in_flight) {
      expand_in_flight |= op.kind == obs::OpKind::kExpand;
    }
    EXPECT_TRUE(expand_in_flight)
        << "flight recorder does not name the dying expand ("
        << scan.in_flight.size() << " in-flight ops)";
    EXPECT_GT(reopened.open_recovery_report().in_flight_ops, 0u);
  }
  // The reopened shard is serviceable.
  reopened.put(123456, 654321);
  EXPECT_EQ(reopened.get(123456).value_or(0), 654321u);
  reopened.close();
  fs::remove_all(dir);
}

TEST(ServiceFault, RestartShardRevivesKilledShardAndServesCommittedData) {
  const std::string dir = make_data_dir("gh_service_fault_restart");
  constexpr u32 kVictim = 1;
  ShardServer server(fault_service_options(dir));

  // Phase 1: power-fail shard 1's worker inside its expansion publish.
  PumpResult crash_phase;
  {
    PathCrashFs policy;
    policy.needle = "shard1.gh";
    const nvm::ScopedFsPolicy installed(&policy);
    crash_phase = pump_puts(server, /*first_key=*/1, /*max_keys=*/100'000,
                            [](const PumpResult& r) { return r.shard_down > 0; });
  }
  ASSERT_GT(crash_phase.shard_down, 0u);
  ASSERT_TRUE(server.shard_down(kVictim));

  // restart_shard is a no-op on a live shard.
  u32 live = kVictim == 0 ? 1 : 0;
  EXPECT_FALSE(server.restart_shard(live));

  // Phase 2: revive. The fault is gone, so the reopen (recovery + orphan
  // reclaim) succeeds and the worker swaps the fresh map in.
  ASSERT_TRUE(server.restart_shard(kVictim));
  EXPECT_FALSE(server.shard_down(kVictim));
  EXPECT_FALSE(server.restart_shard(kVictim)) << "already revived";

  // Every put acknowledged kOk before the crash — on ANY shard, including
  // the victim — must still read back: the revival ran the normal
  // recovery path over the shard's file, and committed ops survive a
  // power failure by the paper's argument.
  Batch batch;
  for (const u64 key : crash_phase.ok_keys) {
    batch.clear();
    batch.requests.push_back(Request{Op::kGet, key, 0});
    server.execute(batch);
    ASSERT_EQ(batch.responses()[0].status, Status::kOk) << "lost committed key " << key;
    ASSERT_EQ(batch.responses()[0].value, key * 3) << key;
  }

  // The revived shard takes new writes — and can expand again, now that
  // the fault is gone.
  const PumpResult after = pump_puts(server, /*first_key=*/500'000, /*max_keys=*/2'000,
                                     [](const PumpResult&) { return false; });
  EXPECT_EQ(after.shard_down, 0u);
  EXPECT_EQ(after.degraded, 0u);
  EXPECT_EQ(after.ok, 2'000u);

  server.stop();
  const obs::Snapshot snap = server.snapshot();
  for (const auto& brief : snap.per_shard) EXPECT_FALSE(brief.degraded) << brief.shard;
  fs::remove_all(dir);
}

TEST(ServiceFault, RestartShardResumesInterruptedMigration) {
  // Kill a shard whose map is mid-online-resize (crash inside the
  // .migrate machinery), then revive it: restart_shard's reopen must
  // resume the migration from the durable cursor, and the shard's idle
  // worker loop must drain it to completion in the background — no
  // further traffic required.
  const std::string dir = make_data_dir("gh_service_fault_restart_mig");
  constexpr u32 kVictim = 1;
  ServiceOptions opts = fault_service_options(dir);
  opts.map_options.online_resize = true;
  opts.map_options.migrate_groups_per_op = 1;
  ShardServer server(opts);

  // One-shot crash on the FIRST durable cursor advance anywhere in the
  // process: the cursor is armed and at least one group has moved, so
  // whichever shard's worker hits it dies provably mid-migration. One
  // shot only — the policy stays installed while the surviving shards
  // keep migrating, and they must not die too.
  struct CursorCrashOnce : nvm::CrashPointPolicy {
    std::atomic<bool> fired{false};
    void on_point(const char* name) override {
      if (std::string_view(name) != "migrate.cursor.advanced") return;
      if (!fired.exchange(true)) throw nvm::SimulatedCrash{};
    }
  };

  PumpResult crash_phase;
  CursorCrashOnce policy;
  {
    const nvm::ScopedCrashPoints installed(&policy);
    crash_phase = pump_puts(server, /*first_key=*/1, /*max_keys=*/100'000,
                            [](const PumpResult& r) { return r.shard_down > 0; });
  }
  ASSERT_TRUE(policy.fired.load()) << "no shard ever advanced a migration cursor";
  ASSERT_GT(crash_phase.shard_down, 0u) << "migration crash never fired";

  // The crash lands on whichever shard migrated first.
  u32 victim = kVictim;
  for (u32 s = 0; s < 4; ++s) {
    if (server.shard_down(s)) victim = s;
  }
  ASSERT_TRUE(server.shard_down(victim));
  const std::string mig_file = dir + "/shard" + std::to_string(victim) + ".gh.migrate";
  ASSERT_TRUE(fs::exists(mig_file)) << "crash point fired but no durable migration target";

  ASSERT_TRUE(server.restart_shard(victim));
  EXPECT_FALSE(server.shard_down(victim));

  Batch batch;
  for (const u64 key : crash_phase.ok_keys) {
    batch.clear();
    batch.requests.push_back(Request{Op::kGet, key, 0});
    server.execute(batch);
    ASSERT_EQ(batch.responses()[0].status, Status::kOk) << "lost committed key " << key;
    ASSERT_EQ(batch.responses()[0].value, key * 3) << key;
  }

  // Idle drain: with no traffic at all, every worker's background
  // migrate_step bursts must finish their shard's migration — resumed or
  // not — and retire the .migrate targets.
  const auto any_migrating = [&] {
    for (u32 s = 0; s < 4; ++s) {
      if (fs::exists(dir + "/shard" + std::to_string(s) + ".gh.migrate")) return true;
    }
    return false;
  };
  for (int spin = 0; spin < 10'000 && any_migrating(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(fs::exists(mig_file)) << "idle worker never drained the resumed migration";
  EXPECT_FALSE(any_migrating()) << "an idle worker left its migration parked";

  server.stop();
  const obs::Snapshot snap = server.snapshot();
  EXPECT_GE(snap.migration.resumed, 1u);
  EXPECT_GT(snap.migration.bg_steps, 0u) << "drain must have run on the idle loop";
  EXPECT_EQ(snap.migration.active, 0u);
  fs::remove_all(dir);
}

TEST(ServiceFault, ExpandFailureDegradesPutsButKeepsServing) {
  const std::string dir = make_data_dir("gh_service_fault_degraded");
  ShardServer server(fault_service_options(dir));

  ExpandFailFs policy;
  const nvm::ScopedFsPolicy installed(&policy);

  const PumpResult r = pump_puts(
      server, /*first_key=*/1, /*max_keys=*/100'000,
      [](const PumpResult& res) { return res.degraded > 0; });
  ASSERT_GT(r.degraded, 0u) << "no put ever hit the degraded path";
  EXPECT_EQ(r.shard_down, 0u);
  for (u32 s = 0; s < server.shards(); ++s) EXPECT_FALSE(server.shard_down(s));

  // The degradation contract: reads of acknowledged keys stay kOk.
  Batch batch;
  for (const u64 key : r.ok_keys) {
    batch.clear();
    batch.requests.push_back(Request{Op::kGet, key, 0});
    server.execute(batch);
    ASSERT_EQ(batch.responses()[0].status, Status::kOk);
    ASSERT_EQ(batch.responses()[0].value, key * 3);
  }

  server.stop();
  const obs::Snapshot snap = server.snapshot();
  EXPECT_TRUE(snap.lifecycle.degraded);
  EXPECT_GT(snap.lifecycle.expand_failures, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace gh::service
