// Multi-session persistence integration: the lifecycle a real deployment
// sees — create, populate, close, reopen, mutate, "crash", recover —
// repeated across many sessions over the same file.
#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_map>

#include "core/group_hash_map.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Persistence, ManySessionsAccumulateState) {
  const std::string path = temp_path("gh_sessions.gh");
  std::filesystem::remove(path);
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(1);

  {
    auto map = GroupHashMap::create(path, {.initial_cells = 4096});
    map.close();
  }
  for (int session = 0; session < 10; ++session) {
    auto map = GroupHashMap::open(path);
    EXPECT_FALSE(map.recovered_on_open()) << "session " << session;
    EXPECT_EQ(map.size(), oracle.size());
    // Each session inserts some, deletes some, updates some.
    for (int i = 0; i < 200; ++i) {
      const u64 k = rng.next_below(1 << 16) + 1;
      const double r = rng.next_double();
      if (r < 0.6) {
        const u64 v = rng.next();
        map.put(k, v);
        oracle[k] = v;
      } else {
        const bool removed = map.erase(k);
        EXPECT_EQ(removed, oracle.erase(k) == 1);
      }
    }
    map.close();
  }
  {
    auto map = GroupHashMap::open(path);
    EXPECT_EQ(map.size(), oracle.size());
    for (const auto& [k, v] : oracle) EXPECT_EQ(*map.get(k), v);
  }
  std::filesystem::remove(path);
}

TEST(Persistence, SimulatedKillRecoversViaDirtyFlag) {
  const std::string path = temp_path("gh_kill.gh");
  const std::string snapshot = temp_path("gh_kill_snapshot.gh");
  std::filesystem::remove(path);
  std::unordered_map<u64, u64> committed;
  {
    auto map = GroupHashMap::create(path, {.initial_cells = 4096});
    for (u64 k = 1; k <= 300; ++k) {
      map.put(k, k * 5);
      committed[k] = k * 5;
    }
    // "kill -9": snapshot the file while the map is still open (dirty).
    // MAP_SHARED makes all persisted writes visible through the file.
    std::filesystem::copy_file(path, snapshot,
                               std::filesystem::copy_options::overwrite_existing);
    map.close();
  }
  {
    auto map = GroupHashMap::open(snapshot);
    EXPECT_TRUE(map.recovered_on_open());
    EXPECT_EQ(map.size(), committed.size());
    for (const auto& [k, v] : committed) EXPECT_EQ(*map.get(k), v);
    // The recovered map is fully usable.
    map.put(9999999, 1);
    EXPECT_EQ(*map.get(9999999), 1u);
    map.close();
  }
  // And the recovered file reopens cleanly.
  {
    auto map = GroupHashMap::open(snapshot);
    EXPECT_FALSE(map.recovered_on_open());
    EXPECT_EQ(map.size(), committed.size() + 1);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(snapshot);
}

TEST(Persistence, ExpansionAcrossSessions) {
  const std::string path = temp_path("gh_grow.gh");
  std::filesystem::remove(path);
  {
    auto map = GroupHashMap::create(path, {.initial_cells = 64});
    for (u64 k = 1; k <= 100; ++k) map.put(k, k);
    map.close();
  }
  const auto size_small = std::filesystem::file_size(path);
  {
    auto map = GroupHashMap::open(path);
    for (u64 k = 101; k <= 2000; ++k) map.put(k, k);
    map.close();
  }
  EXPECT_GT(std::filesystem::file_size(path), size_small);
  {
    auto map = GroupHashMap::open(path);
    EXPECT_EQ(map.size(), 2000u);
    for (u64 k = 1; k <= 2000; ++k) EXPECT_EQ(*map.get(k), k);
  }
  std::filesystem::remove(path);
}

TEST(Persistence, WideMapLifecycle) {
  const std::string path = temp_path("gh_wide_lifecycle.gh");
  std::filesystem::remove(path);
  {
    auto map = GroupHashMapWide::create(path, {.initial_cells = 1024});
    for (u64 i = 1; i <= 200; ++i) map.put(Key128{i * 3, i * 7}, i);
    for (u64 i = 1; i <= 200; i += 2) map.erase(Key128{i * 3, i * 7});
    map.close();
  }
  {
    auto map = GroupHashMapWide::open(path);
    EXPECT_EQ(map.size(), 100u);
    for (u64 i = 2; i <= 200; i += 2) EXPECT_EQ(*map.get(Key128{i * 3, i * 7}), i);
    for (u64 i = 1; i <= 200; i += 2) EXPECT_FALSE(map.get(Key128{i * 3, i * 7}).has_value());
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gh
