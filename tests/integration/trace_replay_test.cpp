// End-to-end integration: generate a paper-style workload, turn it into a
// recorded operation trace, replay it through the public GroupHashMap API
// and through every comparison scheme, and check they all agree with a
// reference map.
#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_map>

#include "core/group_hash_map.hpp"
#include "hash/any_table.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "trace/trace_file.hpp"
#include "trace/workload.hpp"

namespace gh {
namespace {

struct KeyHash {
  usize operator()(const Key128& k) const {
    return static_cast<usize>(hash::fmix64(k.lo) ^ k.hi);
  }
};

using Oracle = std::unordered_map<Key128, u64, KeyHash>;

Oracle replay_reference(const trace::OpTrace& t) {
  Oracle oracle;
  for (const trace::TraceOp& op : t.ops) {
    switch (op.type) {
      case trace::OpType::kInsert:
        oracle[op.key] = op.value;
        break;
      case trace::OpType::kDelete:
        oracle.erase(op.key);
        break;
      case trace::OpType::kQuery:
        break;
    }
  }
  return oracle;
}

TEST(TraceReplay, GroupHashMapMatchesReferenceOnAllTraces) {
  for (const trace::TraceKind kind :
       {trace::TraceKind::kRandomNum, trace::TraceKind::kBagOfWords,
        trace::TraceKind::kFingerprint}) {
    const trace::Workload w = trace::make_workload(kind, 4000, 42);
    const trace::OpTrace t = trace::make_op_trace(w, 2000, 3000, 0.4, 0.2, 7);
    const Oracle oracle = replay_reference(t);

    if (w.wide_keys) {
      auto map = GroupHashMapWide::create_in_memory({.initial_cells = 1 << 13});
      for (const trace::TraceOp& op : t.ops) {
        switch (op.type) {
          case trace::OpType::kInsert:
            map.put(op.key, op.value);
            break;
          case trace::OpType::kDelete:
            EXPECT_TRUE(map.erase(op.key));
            break;
          case trace::OpType::kQuery:
            EXPECT_TRUE(map.get(op.key).has_value());
            break;
        }
      }
      EXPECT_EQ(map.size(), oracle.size()) << w.name;
      for (const auto& [k, v] : oracle) EXPECT_EQ(*map.get(k), v);
    } else {
      auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 13});
      for (const trace::TraceOp& op : t.ops) {
        switch (op.type) {
          case trace::OpType::kInsert:
            map.put(op.key.lo, op.value);
            break;
          case trace::OpType::kDelete:
            EXPECT_TRUE(map.erase(op.key.lo));
            break;
          case trace::OpType::kQuery:
            EXPECT_TRUE(map.get(op.key.lo).has_value());
            break;
        }
      }
      EXPECT_EQ(map.size(), oracle.size()) << w.name;
      for (const auto& [k, v] : oracle) EXPECT_EQ(*map.get(k.lo), v);
    }
  }
}

TEST(TraceReplay, AllSchemesAgreeOnTheSameTrace) {
  const trace::Workload w = trace::make_random_num(3000, 9);
  const trace::OpTrace t = trace::make_op_trace(w, 1500, 2000, 0.3, 0.3, 11);
  const Oracle oracle = replay_reference(t);

  for (const hash::Scheme scheme : {hash::Scheme::kGroup, hash::Scheme::kLinear,
                                    hash::Scheme::kPfht, hash::Scheme::kPath}) {
    hash::TableConfig cfg;
    cfg.scheme = scheme;
    cfg.total_cells_log2 = 13;
    nvm::DirectPM pm(nvm::PersistConfig::counting_only());
    nvm::NvmRegion region =
        nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
    auto table =
        hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);

    for (const trace::TraceOp& op : t.ops) {
      switch (op.type) {
        case trace::OpType::kInsert:
          ASSERT_TRUE(table->insert(op.key, op.value)) << table->name();
          break;
        case trace::OpType::kDelete:
          ASSERT_TRUE(table->erase(op.key)) << table->name();
          break;
        case trace::OpType::kQuery:
          ASSERT_TRUE(table->find(op.key).has_value()) << table->name();
          break;
      }
    }
    EXPECT_EQ(table->count(), oracle.size()) << table->name();
    for (const auto& [k, v] : oracle) {
      ASSERT_TRUE(table->find(k).has_value()) << table->name();
      EXPECT_EQ(*table->find(k), v) << table->name();
    }
  }
}

TEST(TraceReplay, SavedTraceReplaysIdentically) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gh_integration_trace.bin").string();
  const trace::Workload w = trace::make_bag_of_words(2000, 5);
  const trace::OpTrace original = trace::make_op_trace(w, 1000, 1000, 0.5, 0.2, 3);
  trace::save_trace(original, path);
  const trace::OpTrace loaded = trace::load_trace(path);

  auto a = GroupHashMap::create_in_memory({.initial_cells = 1 << 12});
  auto b = GroupHashMap::create_in_memory({.initial_cells = 1 << 12});
  auto replay = [](GroupHashMap& m, const trace::OpTrace& t) {
    for (const trace::TraceOp& op : t.ops) {
      if (op.type == trace::OpType::kInsert) m.put(op.key.lo, op.value);
      if (op.type == trace::OpType::kDelete) m.erase(op.key.lo);
    }
  };
  replay(a, original);
  replay(b, loaded);
  EXPECT_EQ(a.size(), b.size());
  a.for_each([&](u64 k, u64 v) { EXPECT_EQ(*b.get(k), v); });
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gh
