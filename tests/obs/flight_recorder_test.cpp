// Flight recorder unit tests: commit-word encoding, the emit protocol
// over a real PM policy, offline scan round-trips, torn-record
// detection, ring wrap + slot invalidation, in-flight reconstruction,
// and the timeline/trace exports. Crash-interleaved coverage lives in
// crash_fuzz_test.cpp (ShadowPM eviction images) and the publish-crash
// suites; this file pins the protocol's single-process semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "nvm/direct_pm.hpp"
#include "obs/flight_recorder.hpp"

namespace gh::obs {
namespace {

using nvm::DirectPM;

/// A recorder over heap bytes with a zero-latency DirectPM — the emit
/// path is identical to the production sidecar, minus the flush spin.
struct Box {
  static constexpr u32 kRings = 2;
  static constexpr u32 kSlots = 64;

  Box() : mem(flight_required_bytes(kRings, kSlots)) {}

  std::span<std::byte> bytes() { return {mem.data(), mem.size()}; }
  [[nodiscard]] std::span<const std::byte> cbytes() const {
    return {mem.data(), mem.size()};
  }

  BasicFlightRecorder<DirectPM> make() {
    return BasicFlightRecorder<DirectPM>(pm, bytes(), kRings, kSlots);
  }

  DirectPM pm{nvm::PersistConfig::counting_only()};
  std::vector<std::byte> mem;
};

TEST(FlightCommitWord, EncodesAndChecksAllFields) {
  const u16 crc = flight_checksum(0xdeadbeef, 42, 1234567);
  const u64 w = flight_encode_commit(OpKind::kCompact, FlightPhase::kPublish, 3, crc);
  EXPECT_EQ(w >> 48, kFlightCommitMagic);
  EXPECT_EQ((w >> 32) & 0xffff, crc);
  EXPECT_EQ((w >> 16) & 0xffff, 3u);
  EXPECT_EQ((w >> 8) & 0xff, static_cast<u64>(FlightPhase::kPublish));
  EXPECT_EQ(w & 0xff, static_cast<u64>(OpKind::kCompact));
  // The checksum must actually depend on every payload word.
  EXPECT_NE(crc, flight_checksum(0xdeadbef0, 42, 1234567));
  EXPECT_NE(crc, flight_checksum(0xdeadbeef, 43, 1234567));
  EXPECT_NE(crc, flight_checksum(0xdeadbeef, 42, 1234568));
}

TEST(FlightGeometry, RequiredBytes) {
  EXPECT_EQ(flight_required_bytes(1, 32), kFlightHeaderBytes + 32 * sizeof(FlightRecord));
  EXPECT_EQ(flight_required_bytes(),
            kFlightHeaderBytes +
                usize{kFlightRings} * kFlightSlotsPerRing * sizeof(FlightRecord));
}

TEST(FlightScanOffline, RejectsGarbage) {
  // The offline readers stay live even under GH_OBS_OFF (gh_stats must
  // be able to inspect foreign sidecars), so no kEnabled guard here.
  std::vector<std::byte> zeros(flight_required_bytes(1, 32), std::byte{0});
  EXPECT_FALSE(scan_flight(zeros).valid_header);

  std::vector<std::byte> tiny(128, std::byte{0});
  EXPECT_FALSE(scan_flight(tiny).valid_header);

  // Valid magic but a corrupt header CRC must also be rejected.
  FlightHeader h;
  h.ring_count = 1;
  h.slots_per_ring = 32;
  h.crc = h.compute_crc() ^ 1;
  std::memcpy(zeros.data(), &h, sizeof(h));
  EXPECT_FALSE(scan_flight(zeros).valid_header);
}

TEST(FlightRecorderTest, FreshBoxScansEmpty) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();
  const FlightScan s = scan_flight(box.cbytes());
  ASSERT_TRUE(s.valid_header);
  EXPECT_EQ(s.ring_count, Box::kRings);
  EXPECT_EQ(s.slots_per_ring, Box::kSlots);
  EXPECT_EQ(s.slots_scanned, u64{Box::kRings} * Box::kSlots);
  EXPECT_EQ(s.records_valid, 0u);
  EXPECT_EQ(s.records_torn, 0u);
  EXPECT_EQ(s.records_empty, s.slots_scanned);
  EXPECT_TRUE(s.in_flight.empty());
}

TEST(FlightRecorderTest, EmitScanRoundTrip) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();
  rec.set_mode(FlightMode::kFull);

  const u64 t = rec.op_begin(OpKind::kInsert, /*key_hash=*/0xabc);
  ASSERT_NE(t, 0u);
  rec.op_end(t, OpKind::kInsert, 0xabc);

  const FlightScan s = scan_flight(box.cbytes());
  ASSERT_TRUE(s.valid_header);
  ASSERT_EQ(s.records_valid, 2u);
  EXPECT_EQ(s.records_torn, 0u);
  EXPECT_TRUE(s.in_flight.empty()) << "finished op must not read as in flight";
  for (const FlightRecordView& r : s.records) {
    EXPECT_EQ(r.kind, OpKind::kInsert);
    EXPECT_EQ(r.key_hash, 0xabcu);
    EXPECT_EQ(r.seqno, t);
  }
  EXPECT_EQ(s.records[0].phase, FlightPhase::kStart);
  EXPECT_EQ(s.records[1].phase, FlightPhase::kFinish);
  // tsc must be monotone across the op's records.
  EXPECT_LE(s.records[0].tsc, s.records[1].tsc);
}

TEST(FlightRecorderTest, InFlightReconstruction) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();
  rec.set_mode(FlightMode::kFull);

  // Op A: completed. Op B: died after start. Op C: died mid-publish.
  const u64 a = rec.op_begin_always(OpKind::kInsert, 1);
  rec.op_end(a, OpKind::kInsert, 1);
  const u64 b = rec.op_begin_always(OpKind::kErase, 2);
  const u64 c = rec.op_begin_always(OpKind::kExpand, 3);
  rec.op_mark(c, OpKind::kExpand, 3);
  // A standalone event: journaled, but never in flight.
  rec.event(FlightEvent::kQuarantine, OpKind::kScrub);

  const FlightScan s = scan_flight(box.cbytes());
  ASSERT_TRUE(s.valid_header);
  EXPECT_EQ(s.records_torn, 0u);
  ASSERT_EQ(s.in_flight.size(), 2u);
  // in_flight is seqno-ordered: B (start only) then C (reached publish).
  EXPECT_EQ(s.in_flight[0].seqno, b);
  EXPECT_EQ(s.in_flight[0].kind, OpKind::kErase);
  EXPECT_EQ(s.in_flight[0].phase, FlightPhase::kStart);
  EXPECT_EQ(s.in_flight[0].key_hash, 2u);
  EXPECT_EQ(s.in_flight[1].seqno, c);
  EXPECT_EQ(s.in_flight[1].kind, OpKind::kExpand);
  EXPECT_EQ(s.in_flight[1].phase, FlightPhase::kPublish) << "deepest phase wins";
}

TEST(FlightRecorderTest, TornRecordDetection) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();
  const u64 t = rec.op_begin_always(OpKind::kInsert, 77);
  rec.op_end(t, OpKind::kInsert, 77);
  ASSERT_EQ(scan_flight(box.cbytes()).records_valid, 2u);

  // Flip one payload byte of a committed record WITHOUT updating the
  // commit word: the checksum no longer matches — exactly the state the
  // emit protocol exists to prevent.
  auto* rings = reinterpret_cast<FlightRecord*>(box.mem.data() + kFlightHeaderBytes);
  FlightRecord* victim = nullptr;
  for (usize i = 0; i < usize{Box::kRings} * Box::kSlots; ++i) {
    if (rings[i].commit != 0) {
      victim = &rings[i];
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->key_hash ^= 0xff;
  FlightScan s = scan_flight(box.cbytes());
  EXPECT_EQ(s.records_torn, 1u);
  EXPECT_EQ(s.records_valid, 1u);
  victim->key_hash ^= 0xff;  // restore

  // A bogus commit magic is torn too, whatever the payload says.
  victim->commit = (victim->commit & ~(0xffffull << 48)) | (0xBAD0ull << 48);
  s = scan_flight(box.cbytes());
  EXPECT_EQ(s.records_torn, 1u);
}

TEST(FlightRecorderTest, RingWrapNeverTearsAndKeepsNewestRecords) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();
  rec.set_mode(FlightMode::kFull);

  // 2 records per op × 200 ops = 400 records over 128 slots: each ring
  // wraps several times, exercising the batched invalidation path.
  constexpr u64 kOps = 200;
  u64 last = 0;
  for (u64 i = 1; i <= kOps; ++i) {
    last = rec.op_begin(OpKind::kInsert, i);
    ASSERT_NE(last, 0u);
    rec.op_end(last, OpKind::kInsert, i);
  }

  const FlightScan s = scan_flight(box.cbytes());
  ASSERT_TRUE(s.valid_header);
  EXPECT_EQ(s.records_torn, 0u);
  EXPECT_GT(s.records_valid, 0u);
  EXPECT_LE(s.records_valid, u64{Box::kRings} * Box::kSlots);
  // Records come back seqno-sorted and the newest op survives the wraps.
  for (usize i = 1; i < s.records.size(); ++i) {
    EXPECT_LE(s.records[i - 1].seqno, s.records[i].seqno);
  }
  ASSERT_FALSE(s.records.empty());
  EXPECT_EQ(s.records.back().seqno, last);
}

TEST(FlightRecorderTest, ModeGatesAndZeroTokens) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();

  rec.set_mode(FlightMode::kOff);
  EXPECT_EQ(rec.op_begin(OpKind::kInsert, 1), 0u);
  EXPECT_EQ(rec.op_begin_always(OpKind::kExpand), 0u);
  rec.event(FlightEvent::kDegraded, OpKind::kExpand);
  // Edges with token 0 must be no-ops, not crashes.
  rec.op_mark(0, OpKind::kExpand);
  rec.op_end(0, OpKind::kExpand);
  EXPECT_EQ(scan_flight(box.cbytes()).records_valid, 0u);

  // Sampled mode with a huge shift admits (almost) nothing from the
  // data-op edge but still records every lifecycle op.
  rec.set_mode(FlightMode::kSampled);
  rec.set_sample_shift(63);
  const u64 t = rec.op_begin_always(OpKind::kRecover);
  ASSERT_NE(t, 0u);
  rec.op_end(t, OpKind::kRecover);
  EXPECT_EQ(scan_flight(box.cbytes()).records_valid, 2u);
}

TEST(FlightRecorderTest, TimelineAndTraceExports) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  auto rec = box.make();
  rec.set_mode(FlightMode::kFull);
  const u64 done = rec.op_begin(OpKind::kInsert, 0x11);
  rec.op_end(done, OpKind::kInsert, 0x11);
  const u64 hung = rec.op_begin_always(OpKind::kCompact, 0x22);
  rec.op_mark(hung, OpKind::kCompact, 0x22);

  const FlightScan s = scan_flight(box.cbytes());
  const std::string text = flight_timeline_text(s);
  EXPECT_NE(text.find(op_kind_name(OpKind::kCompact)), std::string::npos);
  EXPECT_NE(text.find(flight_phase_name(FlightPhase::kPublish)), std::string::npos);

  const std::string trace = flight_trace_json(s);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // The completed insert pairs into an "X" complete event; the compact
  // that never finished must still appear (as an instant).
  EXPECT_NE(trace.find("\"X\""), std::string::npos);
  EXPECT_NE(trace.find(op_kind_name(OpKind::kCompact)), std::string::npos);
}

TEST(FlightRecorderTest, ReconstructionAfterReopenConsumesTheBox) {
  if (!kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  Box box;
  {
    auto rec = box.make();
    rec.set_mode(FlightMode::kFull);
    rec.op_begin_always(OpKind::kExpand, 9);  // dies in flight
  }
  // "Reopen": scan first (forensics), then a new recorder reformats.
  const FlightScan before = scan_flight(box.cbytes());
  ASSERT_EQ(before.in_flight.size(), 1u);
  EXPECT_EQ(before.in_flight[0].kind, OpKind::kExpand);
  auto rec2 = box.make();
  const FlightScan after = scan_flight(box.cbytes());
  ASSERT_TRUE(after.valid_header);
  EXPECT_EQ(after.records_valid, 0u) << "format must wipe the previous run's records";
  EXPECT_TRUE(after.in_flight.empty());
}

}  // namespace
}  // namespace gh::obs
