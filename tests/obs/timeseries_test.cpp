// obs/timeseries.hpp tests: the delta math (bucket-wise histogram
// subtraction yields the exact per-window distribution), QPS and
// phase-share windows, ring capping, last-window gauges, and the JSON
// round-trip through parse_timeseries_json (the gh_top reader).
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace gh::obs {
namespace {

TEST(TimeSeries, FirstTickOnlySeedsTheBaseline) {
  TimeSeries ts(8, 1000);
  ts.tick(Snapshot{}, 1000);
  EXPECT_TRUE(ts.windows().empty());
  EXPECT_EQ(ts.gauges().windows, 0u);
}

TEST(TimeSeries, WindowCarriesOpsQpsAndOwnPercentiles) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  TimeSeries ts(8, 1000);
  LatencyHistogram insert;
  LatencyHistogram find;

  // Interval 1: 100 fast inserts.
  for (int i = 0; i < 100; ++i) insert.record(1000);
  Snapshot cum;
  cum.latency.insert = insert.snapshot();
  cum.latency.find = find.snapshot();
  ts.tick(cum, 1000);  // seed

  // Interval 2: 40 fast inserts + 10 finds, one of them very slow. The
  // window percentiles must reflect ONLY these 50 samples — the first
  // interval's 100 fast ops are history.
  for (int i = 0; i < 40; ++i) insert.record(1200);
  for (int i = 0; i < 9; ++i) find.record(1500);
  find.record(4'000'000);
  cum.latency.insert = insert.snapshot();
  cum.latency.find = find.snapshot();
  ts.tick(cum, 3000);

  const std::vector<TimeWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 1u);
  const TimeWindow& w = windows[0];
  EXPECT_EQ(w.t_ms, 3000u);
  EXPECT_EQ(w.dur_ms, 2000u);
  EXPECT_EQ(w.ops, 50u) << "ops = histogram-count delta summed over kinds";
  EXPECT_DOUBLE_EQ(w.qps, 25.0);
  EXPECT_GT(w.p50_ns, 0.0);
  EXPECT_GT(w.p99_ns, w.p50_ns * 50)
      << "the slow sample lands in this window's p99 even though the "
         "cumulative histogram is dominated by fast ops";
}

TEST(TimeSeries, SteadyWindowPercentilesExcludeOldTail) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  // Inverse of the test above: a slow FIRST interval must not haunt the
  // p99 of a later all-fast window (the cumulative histogram's tail
  // sticks forever; the window's must not).
  TimeSeries ts(8, 1000);
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(8'000'000);
  Snapshot cum;
  cum.latency.insert = h.snapshot();
  ts.tick(cum, 1000);
  for (int i = 0; i < 100; ++i) h.record(2000);
  cum.latency.insert = h.snapshot();
  ts.tick(cum, 2000);

  const std::vector<TimeWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_GT(cum.latency.insert.p99_ns, windows[0].p99_ns * 100)
      << "cumulative p99 keeps the old tail; the window sheds it";
}

TEST(TimeSeries, PhaseSharesComeFromDeltas) {
  TimeSeries ts(8, 1000);
  Snapshot cum;
  ts.tick(cum, 0);  // seed at zero

  PhaseSnapshot::Row& row = cum.phases.rows[static_cast<usize>(OpKind::kInsert)];
  row.samples = 10;
  row.op_ns = 1000;
  row.phase_ns[static_cast<usize>(Phase::kProbe)] = 750;
  row.phase_ns[static_cast<usize>(Phase::kPersist)] = 250;
  ts.tick(cum, 1000);

  // Second window: the cumulative counters doubled but the delta is all
  // fence time — the share must follow the delta, not the cumulative.
  row.op_ns = 2000;
  row.phase_ns[static_cast<usize>(Phase::kFence)] = 1000;
  ts.tick(cum, 2000);

  const std::vector<TimeWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].phase_share[static_cast<usize>(Phase::kProbe)], 0.75);
  EXPECT_DOUBLE_EQ(windows[0].phase_share[static_cast<usize>(Phase::kPersist)], 0.25);
  EXPECT_DOUBLE_EQ(windows[1].phase_share[static_cast<usize>(Phase::kFence)], 1.0);
  EXPECT_DOUBLE_EQ(windows[1].phase_share[static_cast<usize>(Phase::kProbe)], 0.0);
}

TEST(TimeSeries, MigrationAndLoadGaugesSampledAtWindowEnd) {
  TimeSeries ts(8, 1000);
  Snapshot cum;
  ts.tick(cum, 0);
  cum.migration.active = 1;
  cum.migration.cursor = 37;
  cum.migration.total_groups = 64;
  cum.load_factor = 0.42;
  ts.tick(cum, 1000);

  const std::vector<TimeWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].mig_active, 1u);
  EXPECT_EQ(windows[0].mig_cursor, 37u);
  EXPECT_EQ(windows[0].mig_total, 64u);
  EXPECT_DOUBLE_EQ(windows[0].load_factor, 0.42);
}

TEST(TimeSeries, RingKeepsOnlyTheNewestWindows) {
  TimeSeries ts(3, 1000);
  Snapshot cum;
  ts.tick(cum, 0);
  for (u64 t = 1; t <= 5; ++t) ts.tick(cum, t * 1000);

  const std::vector<TimeWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].t_ms, 3000u) << "oldest surviving window";
  EXPECT_EQ(windows[2].t_ms, 5000u) << "newest window last";
  EXPECT_EQ(ts.gauges().windows, 3u);
}

TEST(TimeSeries, GaugesReflectNewestWindowAndMergeIdempotently) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  TimeSeries ts(4, 500);
  LatencyHistogram h;
  Snapshot cum;
  ts.tick(cum, 0);
  for (int i = 0; i < 50; ++i) h.record(3000);
  cum.latency.find = h.snapshot();
  ts.tick(cum, 1000);

  const TimeseriesGauges g = ts.gauges();
  EXPECT_EQ(g.windows, 1u);
  EXPECT_EQ(g.interval_ms, 500u);
  EXPECT_EQ(g.last_window_ms, 1000u);
  EXPECT_DOUBLE_EQ(g.last_qps, 50.0);
  EXPECT_GT(g.last_p99_ns, 0.0);

  // Max-merge: absorbing the same gauges twice changes nothing, so a
  // Snapshot aggregation that touches several shard snapshots (only one
  // of which owns a ticker) cannot double-count.
  TimeseriesGauges merged = g;
  merged += g;
  EXPECT_EQ(merged.windows, g.windows);
  EXPECT_EQ(merged.last_window_ms, g.last_window_ms);
  EXPECT_DOUBLE_EQ(merged.last_qps, g.last_qps);
  EXPECT_DOUBLE_EQ(merged.last_p99_ns, g.last_p99_ns);
}

TEST(TimeSeries, ResetForgetsBaselineAndWindows) {
  TimeSeries ts(4, 1000);
  Snapshot cum;
  ts.tick(cum, 0);
  ts.tick(cum, 1000);
  ASSERT_EQ(ts.windows().size(), 1u);
  ts.reset();
  EXPECT_TRUE(ts.windows().empty());
  ts.tick(cum, 5000);  // seeds again, no window from the stale baseline
  EXPECT_TRUE(ts.windows().empty());
}

TEST(TimeseriesJson, RoundTripsThroughTheGhTopReader) {
  TimeSeries ts(8, 1000);
  Snapshot cum;
  ts.tick(cum, 0);
  PhaseSnapshot::Row& row = cum.phases.rows[static_cast<usize>(OpKind::kFind)];
  row.op_ns = 100;
  row.phase_ns[static_cast<usize>(Phase::kRingWait)] = 60;
  row.phase_ns[static_cast<usize>(Phase::kProbe)] = 40;
  cum.migration.active = 1;
  cum.migration.cursor = 12;
  cum.migration.total_groups = 99;
  cum.load_factor = 0.5;
  ts.tick(cum, 1000);
  ts.tick(cum, 2000);

  const std::string json = export_timeseries_json(ts);
  EXPECT_NE(json.find(kTimeseriesSchema), std::string::npos);

  std::vector<TimeWindow> parsed;
  ASSERT_TRUE(parse_timeseries_json(json, &parsed));
  const std::vector<TimeWindow> original = ts.windows();
  ASSERT_EQ(parsed.size(), original.size());
  for (usize i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].t_ms, original[i].t_ms);
    EXPECT_EQ(parsed[i].dur_ms, original[i].dur_ms);
    EXPECT_EQ(parsed[i].ops, original[i].ops);
    EXPECT_NEAR(parsed[i].qps, original[i].qps, 0.001);
    EXPECT_NEAR(parsed[i].p99_ns, original[i].p99_ns, 0.001);
    for (usize p = 0; p < kPhases; ++p) {
      EXPECT_NEAR(parsed[i].phase_share[p], original[i].phase_share[p], 0.001);
    }
    EXPECT_EQ(parsed[i].mig_active, original[i].mig_active);
    EXPECT_EQ(parsed[i].mig_cursor, original[i].mig_cursor);
    EXPECT_EQ(parsed[i].mig_total, original[i].mig_total);
    EXPECT_NEAR(parsed[i].load_factor, original[i].load_factor, 0.001);
  }

  // The reader also accepts the JSON embedded inside a larger document
  // (the gh_serve stats file wraps it under a "timeseries" key).
  const std::string wrapped =
      "{\"schema\":\"gh.obs.stats.v1\",\"snapshot\":{},\"timeseries\":" + json + "}";
  parsed.clear();
  ASSERT_TRUE(parse_timeseries_json(wrapped, &parsed));
  EXPECT_EQ(parsed.size(), original.size());
}

TEST(TimeseriesJson, ParserRejectsDocumentsWithoutWindows) {
  std::vector<TimeWindow> parsed;
  EXPECT_FALSE(parse_timeseries_json("", &parsed));
  EXPECT_FALSE(parse_timeseries_json("{\"schema\":\"gh.obs.timeseries.v1\"}", &parsed));
  EXPECT_FALSE(parse_timeseries_json("not json at all", &parsed));
  // An empty windows array is well-formed: zero windows, success.
  EXPECT_TRUE(parse_timeseries_json("{\"windows\":[]}", &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(TimeseriesPrometheus, ExposesNewestWindowGauges) {
  TimeSeries ts(4, 1000);
  Snapshot cum;
  ts.tick(cum, 0);
  cum.migration.cursor = 7;
  ts.tick(cum, 1000);

  const std::string prom = export_timeseries_prometheus(ts);
  EXPECT_NE(prom.find("gh_window_qps "), std::string::npos);
  EXPECT_NE(prom.find("gh_window_p99_ns "), std::string::npos);
  EXPECT_NE(prom.find("gh_window_phase_share{phase=\"ring_wait\"}"), std::string::npos);
  EXPECT_NE(prom.find("gh_window_phase_share{phase=\"persist\"}"), std::string::npos);
  EXPECT_NE(prom.find("gh_window_mig_cursor 7"), std::string::npos);
}

}  // namespace
}  // namespace gh::obs
