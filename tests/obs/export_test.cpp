// obs/export.hpp tests: JSON round-trips through the structural
// validator and carries the schema marker + required sections; the
// Prometheus exposition carries the expected metric families.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace gh::obs {
namespace {

Snapshot sample_snapshot() {
  Snapshot s;
  s.source = "TestMap";
  s.size = 10;
  s.capacity = 64;
  s.load_factor = 10.0 / 64.0;
  s.shards = 2;
  s.persist.lines_flushed = 123;
  s.persist.fences = 45;
  s.table.inserts = 10;
  s.table.queries = 7;
  s.scrub.groups_scrubbed = 3;
  s.contention.read_retries = 9;
  s.lifecycle.expansions = 1;
  s.lifecycle.degraded = true;
  s.per_shard.push_back(ShardBrief{0, 5, 32, {1, 0, 0}, 1, false});
  s.per_shard.push_back(ShardBrief{1, 5, 32, {8, 0, 0}, 0, true});
  return s;
}

TEST(ExportJson, ValidatesAndCarriesSchema) {
  const std::string json = export_json(sample_snapshot());
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
  EXPECT_NE(json.find(kSnapshotSchema), std::string::npos);
  for (const char* key : {"\"source\"", "\"persist\"", "\"ops\"", "\"scrub\"",
                          "\"contention\"", "\"lifecycle\"", "\"latency\"",
                          "\"per_shard\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Values survive: lines_flushed and the degraded flag.
  EXPECT_NE(json.find("\"lines_flushed\":123"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
}

TEST(ExportJson, SourceStringIsEscaped) {
  Snapshot s = sample_snapshot();
  s.source = "weird\"name\\with\nescapes";
  const std::string json = export_json(s);
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
}

TEST(ExportJson, RegistryDumpValidates) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  MetricsRegistry::global().counter("test.export.counter").add(7);
  const std::string json = export_registry_json();
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
  EXPECT_NE(json.find(kMetricsSchema), std::string::npos);
  EXPECT_NE(json.find("test.export.counter"), std::string::npos);
  MetricsRegistry::global().counter("test.export.counter").reset();
}

TEST(ExportPrometheus, CarriesMetricFamilies) {
  const std::string prom = export_prometheus(sample_snapshot());
  for (const char* family :
       {"gh_size", "gh_inserts_total", "gh_lines_flushed_total", "gh_fences_total",
        "gh_read_retries_total", "gh_expansions_total"}) {
    EXPECT_NE(prom.find(family), std::string::npos) << family;
  }
  EXPECT_NE(prom.find("source=\"TestMap\""), std::string::npos);
  // Exposition format: every non-comment line is "name{labels} value".
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
      EXPECT_EQ(line.rfind("gh_", 0), 0u) << line;
    }
    pos = eol + 1;
  }
}

TEST(ExportPrometheus, CustomPrefix) {
  const std::string prom = export_prometheus(sample_snapshot(), "acme_");
  EXPECT_NE(prom.find("acme_size"), std::string::npos);
  EXPECT_EQ(prom.find("gh_size"), std::string::npos);
}

TEST(ValidateJson, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(validate_json("{\"a\":1", &error));
  EXPECT_FALSE(validate_json("{\"a\":}", &error));
  EXPECT_FALSE(validate_json("", &error));
  EXPECT_FALSE(validate_json("{\"a\":1}}", &error));
  EXPECT_TRUE(validate_json("{\"a\":[1,2,{\"b\":true}],\"c\":\"x\"}", &error)) << error;
}

}  // namespace
}  // namespace gh::obs
