// obs/export.hpp tests: JSON round-trips through the structural
// validator and carries the schema marker + required sections; the
// Prometheus exposition carries the expected metric families.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace gh::obs {
namespace {

Snapshot sample_snapshot() {
  Snapshot s;
  s.source = "TestMap";
  s.size = 10;
  s.capacity = 64;
  s.load_factor = 10.0 / 64.0;
  s.shards = 2;
  s.persist.lines_flushed = 123;
  s.persist.fences = 45;
  s.table.inserts = 10;
  s.table.queries = 7;
  s.scrub.groups_scrubbed = 3;
  s.contention.read_retries = 9;
  s.lifecycle.expansions = 1;
  s.lifecycle.degraded = true;
  s.per_shard.push_back(ShardBrief{0, 5, 32, {1, 0, 0}, 1, false});
  s.per_shard.push_back(ShardBrief{1, 5, 32, {8, 0, 0}, 0, true});
  return s;
}

TEST(ExportJson, ValidatesAndCarriesSchema) {
  const std::string json = export_json(sample_snapshot());
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
  EXPECT_NE(json.find(kSnapshotSchema), std::string::npos);
  for (const char* key : {"\"source\"", "\"persist\"", "\"ops\"", "\"scrub\"",
                          "\"contention\"", "\"lifecycle\"", "\"latency\"",
                          "\"per_shard\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Values survive: lines_flushed and the degraded flag.
  EXPECT_NE(json.find("\"lines_flushed\":123"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
}

TEST(ExportJson, SourceStringIsEscaped) {
  Snapshot s = sample_snapshot();
  s.source = "weird\"name\\with\nescapes";
  const std::string json = export_json(s);
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
}

TEST(ExportJson, RegistryDumpValidates) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  MetricsRegistry::global().counter("test.export.counter").add(7);
  const std::string json = export_registry_json();
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
  EXPECT_NE(json.find(kMetricsSchema), std::string::npos);
  EXPECT_NE(json.find("test.export.counter"), std::string::npos);
  MetricsRegistry::global().counter("test.export.counter").reset();
}

TEST(ExportPrometheus, CarriesMetricFamilies) {
  const std::string prom = export_prometheus(sample_snapshot());
  for (const char* family :
       {"gh_size", "gh_inserts_total", "gh_lines_flushed_total", "gh_fences_total",
        "gh_read_retries_total", "gh_expansions_total"}) {
    EXPECT_NE(prom.find(family), std::string::npos) << family;
  }
  EXPECT_NE(prom.find("source=\"TestMap\""), std::string::npos);
  // Exposition format: every non-comment line is "name{labels} value".
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
      EXPECT_EQ(line.rfind("gh_", 0), 0u) << line;
    }
    pos = eol + 1;
  }
}

TEST(ExportPrometheus, CustomPrefix) {
  const std::string prom = export_prometheus(sample_snapshot(), "acme_");
  EXPECT_NE(prom.find("acme_size"), std::string::npos);
  EXPECT_EQ(prom.find("gh_size"), std::string::npos);
}

TEST(ValidateJson, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(validate_json("{\"a\":1", &error));
  EXPECT_FALSE(validate_json("{\"a\":}", &error));
  EXPECT_FALSE(validate_json("", &error));
  EXPECT_FALSE(validate_json("{\"a\":1}}", &error));
  EXPECT_TRUE(validate_json("{\"a\":[1,2,{\"b\":true}],\"c\":\"x\"}", &error)) << error;
}

/// A snapshot whose insert histogram carries real bucket data, so the
/// validator's count-vs-buckets cross-check has something to verify.
Snapshot snapshot_with_buckets() {
  Snapshot s = sample_snapshot();
  s.latency.insert.count = 7;
  s.latency.insert.sum_ns = 700;
  s.latency.insert.max_ns = 300;
  s.latency.insert.buckets = {{3, 4}, {9, 3}};  // sums to count
  return s;
}

TEST(ValidateJson, AcceptsConsistentHistogramBuckets) {
  std::string error;
  EXPECT_TRUE(validate_json(export_json(snapshot_with_buckets()), &error)) << error;
}

TEST(ValidateJson, RejectsBucketCountMismatch) {
  // Mutate the exported document the way a truncated or tampered export
  // would: the total no longer equals the sum of the bucket counts.
  std::string json = export_json(snapshot_with_buckets());
  std::string error;

  // (a) inflate the histogram's "count".
  std::string mutated = json;
  const auto count_at = mutated.find("\"count\":7");
  ASSERT_NE(count_at, std::string::npos);
  mutated.replace(count_at, 9, "\"count\":8");
  EXPECT_FALSE(validate_json(mutated, &error));
  EXPECT_NE(error.find("bucket"), std::string::npos) << error;

  // (b) drop one bucket's worth of counts instead.
  mutated = json;
  const auto bucket_at = mutated.find("[9,3]");
  ASSERT_NE(bucket_at, std::string::npos);
  mutated.replace(bucket_at, 5, "[9,2]");
  EXPECT_FALSE(validate_json(mutated, &error));

  // (c) malformed bucket shape (a pair must be exactly [index, count]).
  mutated = json;
  mutated.replace(mutated.find("[9,3]"), 5, "[9]");
  EXPECT_FALSE(validate_json(mutated, &error));
}

TEST(ValidateJson, RejectsUnknownTopLevelSnapshotKey) {
  const std::string json = export_json(sample_snapshot());
  std::string error;
  ASSERT_EQ(json[0], '{');
  // Inject a top-level key the schema does not define. Both positions —
  // before and after the "schema" marker — must be rejected.
  std::string front = "{\"bogus\":1," + json.substr(1);
  EXPECT_FALSE(validate_json(front, &error));
  EXPECT_NE(error.find("unknown top-level key"), std::string::npos) << error;

  std::string back = json.substr(0, json.size() - 1) + ",\"trailing_junk\":{}}";
  EXPECT_FALSE(validate_json(back, &error));

  // Nested objects may use any keys — only the top level is closed.
  const auto persist_at = json.find("\"persist\":{");
  ASSERT_NE(persist_at, std::string::npos);
  std::string nested = json;
  nested.insert(persist_at + std::string("\"persist\":{").size(), "\"bogus\":1,");
  EXPECT_TRUE(validate_json(nested, &error)) << error;
}

TEST(ValidateJson, ForeignDocumentsSkipSchemaChecks) {
  // Without the snapshot schema marker the validator is purely
  // structural: unknown keys and bucketless histograms are fine.
  std::string error;
  EXPECT_TRUE(validate_json("{\"anything\":1,\"count\":5}", &error)) << error;
  EXPECT_TRUE(validate_json("{\"schema\":\"other.v1\",\"bogus\":1}", &error)) << error;
  // But a count/buckets pair is cross-checked wherever it appears.
  EXPECT_FALSE(validate_json("{\"count\":5,\"buckets\":[[1,1]]}", &error));
  EXPECT_TRUE(validate_json("{\"count\":2,\"buckets\":[[1,1],[4,1]]}", &error)) << error;
}

TEST(ExportPrometheus, EscapesHostileLabelValues) {
  Snapshot s = sample_snapshot();
  s.source = "/tmp/weird\\dir/\"quoted\"\nname.gh";
  const std::string prom = export_prometheus(s);
  // The hostile path must round-trip escaped: \\ for backslash, \" for
  // quote, \n (two characters) for newline — never a raw newline or
  // quote inside the label value.
  EXPECT_NE(prom.find("source=\"/tmp/weird\\\\dir/\\\"quoted\\\"\\nname.gh\""),
            std::string::npos)
      << prom;
  // Every line still parses as comment or "name{labels} value".
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_EQ(line.rfind("gh_", 0), 0u) << line;
    }
    pos = eol + 1;
  }
}

/// Build a shard snapshot whose insert histogram holds `values` (raw
/// ticks) — the per-shard input Snapshot::absorb aggregates.
Snapshot shard_with_latency(const std::vector<u64>& values) {
  Snapshot s;
  s.size = values.size();
  s.capacity = 1024;
  LatencyHistogram h;
  for (const u64 v : values) h.record(v);
  s.latency.insert = h.snapshot();
  return s;
}

TEST(SnapshotAbsorb, PercentilesEqualHistogramOfUnion) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  // Shard 1: tight fast cluster. Shard 2: fewer, much slower ops — the
  // aggregate's p99/max must come from shard 2 even though shard 1
  // dominates by count.
  std::vector<u64> fast;
  for (u64 v = 200; v < 400; ++v) fast.push_back(v);
  const std::vector<u64> slow = {100'000, 200'000, 400'000};

  Snapshot agg = shard_with_latency(fast);
  agg.absorb(shard_with_latency(slow));

  std::vector<u64> all = fast;
  all.insert(all.end(), slow.begin(), slow.end());
  const Snapshot uni = shard_with_latency(all);

  EXPECT_EQ(agg.latency.insert.count, uni.latency.insert.count);
  EXPECT_EQ(agg.latency.insert.max_ns, uni.latency.insert.max_ns);
  EXPECT_EQ(agg.latency.insert.buckets, uni.latency.insert.buckets);
  EXPECT_DOUBLE_EQ(agg.latency.insert.p50_ns, uni.latency.insert.p50_ns);
  EXPECT_DOUBLE_EQ(agg.latency.insert.p99_ns, uni.latency.insert.p99_ns);
  EXPECT_GT(agg.latency.insert.p99_ns, agg.latency.insert.p50_ns * 50)
      << "the slow shard's tail must dominate the aggregate p99";
  // Scalar sections add; load_factor is re-derived from the sums.
  EXPECT_EQ(agg.size, uni.size);
  EXPECT_EQ(agg.capacity, 2048u);
}

TEST(SnapshotAbsorb, EmptyIsIdentityAndFlightAccumulates) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  Snapshot s = shard_with_latency({500, 600, 700});
  s.flight.enabled = true;
  s.flight.records_scanned = 4;
  s.flight.in_flight_on_open.push_back(
      FlightOpBrief{OpKind::kExpand, FlightPhase::kPublish, 9, 0xaa});
  const Snapshot before = s;

  s.absorb(Snapshot{});  // absorbing an empty shard changes no statistic
  EXPECT_EQ(s.latency.insert.count, before.latency.insert.count);
  EXPECT_DOUBLE_EQ(s.latency.insert.p99_ns, before.latency.insert.p99_ns);
  EXPECT_TRUE(s.flight.enabled);
  ASSERT_EQ(s.flight.in_flight_on_open.size(), 1u);

  Snapshot other = shard_with_latency({800});
  other.flight.enabled = true;
  other.flight.records_scanned = 2;
  other.flight.records_torn = 1;
  other.flight.in_flight_on_open.push_back(
      FlightOpBrief{OpKind::kCompact, FlightPhase::kStart, 11, 0xbb});
  s.absorb(other);
  EXPECT_EQ(s.flight.records_scanned, 6u);
  EXPECT_EQ(s.flight.records_torn, 1u);
  ASSERT_EQ(s.flight.in_flight_on_open.size(), 2u);
  EXPECT_EQ(s.flight.in_flight_on_open[1].kind, OpKind::kCompact);
}

TEST(SnapshotAbsorb, SelfCopyDoublesCountsKeepsShape) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  Snapshot s = shard_with_latency({1000, 2000, 3000, 4000});
  const Snapshot copy = s;
  s.absorb(copy);
  // Same distribution twice: counts double, the shape (and therefore
  // every percentile and the max) is unchanged.
  EXPECT_EQ(s.latency.insert.count, 2 * copy.latency.insert.count);
  EXPECT_EQ(s.latency.insert.max_ns, copy.latency.insert.max_ns);
  EXPECT_DOUBLE_EQ(s.latency.insert.p50_ns, copy.latency.insert.p50_ns);
  EXPECT_DOUBLE_EQ(s.latency.insert.p99_ns, copy.latency.insert.p99_ns);
  EXPECT_DOUBLE_EQ(s.latency.insert.mean_ns, copy.latency.insert.mean_ns);
}

/// A snapshot with phase attribution and timeseries gauges filled the
/// way ShardServer::live_snapshot + the gh_serve stats ticker do.
Snapshot snapshot_with_phases() {
  Snapshot s = sample_snapshot();
  PhaseSnapshot::Row& ins = s.phases.rows[static_cast<usize>(OpKind::kInsert)];
  ins.samples = 5;
  ins.op_ns = 1000;
  ins.phase_ns[static_cast<usize>(Phase::kRingWait)] = 400;
  ins.phase_ns[static_cast<usize>(Phase::kProbe)] = 300;
  ins.phase_ns[static_cast<usize>(Phase::kPersist)] = 200;
  ins.phase_ns[static_cast<usize>(Phase::kFence)] = 80;
  ins.phase_ns[static_cast<usize>(Phase::kMigrateHelp)] = 20;
  s.timeseries.windows = 3;
  s.timeseries.interval_ms = 500;
  s.timeseries.last_window_ms = 1500;
  s.timeseries.last_qps = 1234.5;
  s.timeseries.last_p99_ns = 42000;
  return s;
}

TEST(ExportJson, PhasesAndTimeseriesSectionsValidate) {
  const std::string json = export_json(snapshot_with_phases());
  std::string error;
  EXPECT_TRUE(validate_json(json, &error)) << error;
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_wait_ns\":400"), std::string::npos);
  EXPECT_NE(json.find("\"persist_ns\":200"), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"last_qps\":1234.5"), std::string::npos);
  // Unsampled kinds are elided from the phases object entirely.
  EXPECT_EQ(json.find("\"scrub\":{\"samples\":0"), std::string::npos);
}

TEST(ExportPrometheus, PhaseCountersCarryOpAndPhaseLabels) {
  const std::string prom = export_prometheus(snapshot_with_phases());
  EXPECT_NE(prom.find("gh_phase_ns_total"), std::string::npos);
  EXPECT_NE(prom.find("op=\"insert\",phase=\"ring_wait\""), std::string::npos);
  EXPECT_NE(prom.find("op=\"insert\",phase=\"migrate_help\""), std::string::npos);
}

TEST(SnapshotAbsorb, PhasesSumButSharesAreInvariant) {
  Snapshot s = snapshot_with_phases();
  const Snapshot copy = s;
  s.absorb(copy);
  const PhaseSnapshot::Row& row = s.phases.of(OpKind::kInsert);
  EXPECT_EQ(row.samples, 10u) << "counters double on self-absorb";
  EXPECT_EQ(row.op_ns, 2000u);
  EXPECT_EQ(row.phase_ns[static_cast<usize>(Phase::kPersist)], 400u);
  // Every share is unchanged: doubling all counters scales uniformly.
  for (usize p = 0; p < kPhases; ++p) {
    EXPECT_DOUBLE_EQ(s.phases.share(OpKind::kInsert, static_cast<Phase>(p)),
                     copy.phases.share(OpKind::kInsert, static_cast<Phase>(p)));
  }
  // Phase sums still partition the attributed total after the merge.
  u64 phase_sum = 0;
  for (const u64 p : row.phase_ns) phase_sum += p;
  EXPECT_EQ(phase_sum, row.op_ns);
}

TEST(SnapshotAbsorb, TimeseriesGaugesMaxMergeNotSum) {
  Snapshot s = snapshot_with_phases();
  const Snapshot copy = s;
  s.absorb(copy);
  // Gauges: self-absorb must NOT double (max-merge).
  EXPECT_EQ(s.timeseries.windows, copy.timeseries.windows);
  EXPECT_DOUBLE_EQ(s.timeseries.last_qps, copy.timeseries.last_qps);

  // Absorbing a shard that never saw a ticker keeps the aggregator's
  // gauges; absorbing a larger gauge takes it.
  Snapshot bigger;
  bigger.timeseries.last_qps = 9999.0;
  s.absorb(bigger);
  EXPECT_DOUBLE_EQ(s.timeseries.last_qps, 9999.0);
  EXPECT_EQ(s.timeseries.windows, copy.timeseries.windows);
}

TEST(ExportPrometheus, EmitsHelpAndTypeLines) {
  const std::string prom = export_prometheus(sample_snapshot());
  // Exposition metadata: every family gets "# HELP" then "# TYPE".
  for (const char* family : {"gh_size", "gh_inserts_total", "gh_lines_flushed_total"}) {
    const auto help_at = prom.find("# HELP " + std::string(family) + " ");
    const auto type_at = prom.find("# TYPE " + std::string(family) + " ");
    EXPECT_NE(help_at, std::string::npos) << family;
    EXPECT_NE(type_at, std::string::npos) << family;
    EXPECT_LT(help_at, type_at) << family << ": HELP must precede TYPE";
  }
  // The new flight-forensics counters are exposed too.
  EXPECT_NE(prom.find("gh_flight_records_torn_total"), std::string::npos);
  EXPECT_NE(prom.find("gh_flight_in_flight_on_open_total"), std::string::npos);
}

}  // namespace
}  // namespace gh::obs
