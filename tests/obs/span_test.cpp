// obs/span.hpp tests: ring semantics (overwrite-oldest, drain, dropped),
// the thread-trace + phase-collection protocol (op span and its phase
// children partition the op exactly), span file round-trip, and the
// trace-event rendering regression — merged flight+span output must be
// globally sorted by ts or Chrome's viewer silently drops events.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace gh::obs {
namespace {

SpanRecord make_record(u32 span_id, u64 t_start, u64 t_end) {
  SpanRecord r;
  r.trace_id = 1;
  r.span_id = span_id;
  r.t_start = t_start;
  r.t_end = t_end;
  return r;
}

TEST(SpanRing, OverwritesOldestAndCountsDrops) {
  SpanRing ring(4);
  for (u32 i = 1; i <= 6; ++i) ring.emit(make_record(i, i * 10, i * 10 + 5));
  EXPECT_EQ(ring.dropped(), 2u);

  std::vector<SpanRecord> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 4u);
  // Oldest-first of the surviving records: 3, 4, 5, 6.
  for (u32 i = 0; i < 4; ++i) EXPECT_EQ(out[i].span_id, i + 3);

  // Drain cleared the ring; dropped is cumulative.
  out.clear();
  ring.drain(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SpanRing, ZeroCapacityIsClampedNotFatal) {
  SpanRing ring(0);
  ring.emit(make_record(1, 10, 20));
  ring.emit(make_record(2, 30, 40));
  std::vector<SpanRecord> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].span_id, 2u);
}

TEST(TraceMode, NamesRoundTrip) {
  for (const TraceMode m : {TraceMode::kOff, TraceMode::kSampled, TraceMode::kFull}) {
    EXPECT_EQ(trace_mode_from(trace_mode_name(m)), m);
  }
  EXPECT_EQ(trace_mode_from("bogus"), TraceMode::kOff);
}

TEST(SpanEmit, EndClampedToStart) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  (void)SpanCollector::global().drain_all();
  const u64 trace = SpanCollector::global().next_trace_id();
  emit_span(SpanKind::kRequest, trace, 0, /*t_start=*/100, /*t_end=*/50);
  for (const SpanRecord& s : SpanCollector::global().drain_all()) {
    if (s.trace_id != trace) continue;
    EXPECT_EQ(s.t_start, 100u);
    EXPECT_EQ(s.t_end, 100u);
    return;
  }
  FAIL() << "emitted span not found in drain";
}

TEST(SpanCollector, TraceIdsAreUniqueAndNonZero) {
  u64 prev = SpanCollector::global().next_trace_id();
  EXPECT_NE(prev, 0u);
  for (int i = 0; i < 100; ++i) {
    const u64 id = SpanCollector::global().next_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, prev);
    prev = id;
  }
}

/// Spin until at least `ticks` TSC ticks elapsed (keeps phase scratch
/// durations nonzero without sleeping).
void burn_ticks(u64 ticks) {
  const u64 t0 = now_ticks();
  while (now_ticks() - t0 < ticks) {
  }
}

TEST(PhaseCollect, OpSpanAndChildrenPartitionTheOp) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  (void)SpanCollector::global().drain_all();
  const u64 trace = SpanCollector::global().next_trace_id();
  set_thread_trace(trace, /*parent_span=*/7, /*sampled=*/true);

  PhaseAccum acc;
  const u64 t0 = now_ticks();
  phase_collect_begin(t0);
  { PhasePersistScope persist; burn_ticks(2000); }
  { PhaseFenceScope fence; burn_ticks(2000); }
  burn_ticks(2000);  // probe residual
  const u64 dt = now_ticks() - t0;
  phase_collect_finish(acc, OpKind::kInsert, t0, dt, /*shard=*/3);
  clear_thread_trace();

  const SpanRecord* op = nullptr;
  std::vector<const SpanRecord*> children;
  const std::vector<SpanRecord> spans = SpanCollector::global().drain_all();
  for (const SpanRecord& s : spans) {
    if (s.trace_id != trace) continue;
    if (s.kind == static_cast<u8>(SpanKind::kOpInsert)) op = &s;
  }
  ASSERT_NE(op, nullptr) << "sampled op must emit an op span";
  EXPECT_EQ(op->parent_id, 7u);
  EXPECT_EQ(op->shard, 3u);
  EXPECT_EQ(op->t_start, t0);
  EXPECT_GE(op->t_end - op->t_start, dt);

  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace && s.parent_id == op->span_id) children.push_back(&s);
  }
  ASSERT_GE(children.size(), 3u) << "expected probe + persist + fence children";
  // The children tile [op.t_start, op.t_end] contiguously, in emit order.
  u64 cursor = op->t_start;
  u64 covered = 0;
  bool saw_persist = false;
  bool saw_fence = false;
  for (const SpanRecord* c : children) {
    EXPECT_EQ(c->t_start, cursor) << "children must be contiguous";
    EXPECT_GE(c->t_end, c->t_start);
    covered += c->t_end - c->t_start;
    cursor = c->t_end;
    saw_persist |= c->kind == static_cast<u8>(SpanKind::kPhasePersist);
    saw_fence |= c->kind == static_cast<u8>(SpanKind::kPhaseFence);
    EXPECT_NE(c->kind, static_cast<u8>(SpanKind::kRingWait))
        << "ring_wait is service-level, never a phase child";
  }
  EXPECT_TRUE(saw_persist);
  EXPECT_TRUE(saw_fence);
  EXPECT_EQ(cursor, op->t_end) << "children must cover the op span exactly";
  EXPECT_EQ(covered, op->t_end - op->t_start);

  // The accumulator saw the same partition: phases sum to op time.
  const PhaseSnapshot snap = acc.snapshot();
  const PhaseSnapshot::Row& row = snap.of(OpKind::kInsert);
  EXPECT_EQ(row.samples, 1u);
  u64 phase_sum = 0;
  for (const u64 p : row.phase_ns) phase_sum += p;
  EXPECT_NEAR(static_cast<double>(phase_sum), static_cast<double>(row.op_ns),
              2.0 + static_cast<double>(row.op_ns) * 0.001);
}

TEST(PhaseCollect, UnsampledThreadEmitsNoSpansButStillAttributes) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  (void)SpanCollector::global().drain_all();
  clear_thread_trace();

  PhaseAccum acc;
  const u64 t0 = now_ticks();
  phase_collect_begin(t0);
  { PhasePersistScope persist; burn_ticks(1000); }
  phase_collect_finish(acc, OpKind::kFind, t0, now_ticks() - t0);

  EXPECT_EQ(acc.snapshot().of(OpKind::kFind).samples, 1u);
  for (const SpanRecord& s : SpanCollector::global().drain_all()) {
    EXPECT_NE(s.kind, static_cast<u8>(SpanKind::kOpFind))
        << "no thread trace installed: op spans must not be emitted";
  }
}

TEST(PhaseCollect, EnclosingOpOwnsCollection) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  clear_thread_trace();
  PhaseAccum acc;
  const u64 outer_t0 = now_ticks();
  phase_collect_begin(outer_t0);
  burn_ticks(500);
  // A nested op (put → expand) must not steal the collection...
  const u64 inner_t0 = now_ticks();
  phase_collect_begin(inner_t0);
  { PhasePersistScope persist; burn_ticks(500); }
  phase_collect_finish(acc, OpKind::kExpand, inner_t0, now_ticks() - inner_t0);
  EXPECT_EQ(acc.snapshot().of(OpKind::kExpand).samples, 0u)
      << "the inner finish must be a no-op: the outer op owns the scratch";
  // ...and the outer finish books everything, including the nested persist.
  phase_collect_finish(acc, OpKind::kInsert, outer_t0, now_ticks() - outer_t0);
  const PhaseSnapshot snap = acc.snapshot();
  const PhaseSnapshot::Row& row = snap.of(OpKind::kInsert);
  EXPECT_EQ(row.samples, 1u);
  EXPECT_GT(row.phase_ns[static_cast<usize>(Phase::kPersist)], 0u);
}

TEST(PhaseCollect, HelpScopeFoldsNestedPersistIntoMigrateHelp) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  clear_thread_trace();
  PhaseAccum acc;
  const u64 t0 = now_ticks();
  phase_collect_begin(t0);
  {
    PhaseHelpScope help;
    // Flush/fence inside the help-along must book as migrate_help, not
    // persist/fence — the stall the op experienced IS the help.
    PhasePersistScope persist;
    burn_ticks(1500);
  }
  phase_collect_finish(acc, OpKind::kInsert, t0, now_ticks() - t0);
  const PhaseSnapshot snap = acc.snapshot();
  const PhaseSnapshot::Row& row = snap.of(OpKind::kInsert);
  EXPECT_GT(row.phase_ns[static_cast<usize>(Phase::kMigrateHelp)], 0u);
  EXPECT_EQ(row.phase_ns[static_cast<usize>(Phase::kPersist)], 0u);
}

TEST(PhaseAccum, AddWaitPreservesPartitionInvariant) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  PhaseAccum acc;
  const u64 phase_ticks[kPhases] = {0, 600, 300, 100, 0};
  acc.add(OpKind::kFind, 1000, phase_ticks);
  acc.add_wait(OpKind::kFind, Phase::kRingWait, 4000);

  const PhaseSnapshot snap = acc.snapshot();
  const PhaseSnapshot::Row& row = snap.of(OpKind::kFind);
  u64 phase_sum = 0;
  for (const u64 p : row.phase_ns) phase_sum += p;
  // Each field truncates its own ticks→ns conversion, so the sum can sit
  // up to kPhases ns under the attributed total — never more.
  EXPECT_NEAR(static_cast<double>(phase_sum), static_cast<double>(row.op_ns),
              static_cast<double>(kPhases) + 1)
      << "ring wait adds to both sides of the invariant";
  const double total_share =
      snap.share(OpKind::kFind, Phase::kRingWait) + snap.share(OpKind::kFind, Phase::kProbe) +
      snap.share(OpKind::kFind, Phase::kPersist) + snap.share(OpKind::kFind, Phase::kFence) +
      snap.share(OpKind::kFind, Phase::kMigrateHelp);
  EXPECT_NEAR(total_share, 1.0, 0.01);
  EXPECT_GT(snap.share(OpKind::kFind, Phase::kRingWait), 0.7);
}

TEST(SpanFile, RoundTripsRecordsAndBase) {
  const std::string path = testing::TempDir() + "span_roundtrip.ghspans";
  std::vector<SpanRecord> spans;
  spans.push_back(make_record(1, 5000, 9000));
  spans.push_back(make_record(2, 3000, 4000));  // min t_start → base
  spans.back().kind = static_cast<u8>(SpanKind::kPhasePersist);
  ASSERT_TRUE(write_spans_file(path, spans, 2.5));

  const SpanFile f = read_spans_file(path);
  ASSERT_TRUE(f.valid);
  EXPECT_DOUBLE_EQ(f.ticks_per_ns, 2.5);
  EXPECT_EQ(f.base_ticks, 3000u);
  ASSERT_EQ(f.spans.size(), 2u);
  EXPECT_EQ(f.spans[0].span_id, 1u);
  EXPECT_EQ(f.spans[1].kind, static_cast<u8>(SpanKind::kPhasePersist));
  std::remove(path.c_str());
}

TEST(SpanFile, RejectsMissingAndForeignFiles) {
  EXPECT_FALSE(read_spans_file(testing::TempDir() + "no_such.ghspans").valid);
  const std::string path = testing::TempDir() + "foreign.ghspans";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a span file, much longer than a header", f);
  std::fclose(f);
  EXPECT_FALSE(read_spans_file(path).valid);
  std::remove(path.c_str());
}

/// Extract every "ts" value from a rendered trace document, in order.
std::vector<double> extract_ts(const std::string& json) {
  std::vector<double> ts;
  usize pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    ts.push_back(std::strtod(json.c_str() + pos + 5, nullptr));
    pos += 5;
  }
  return ts;
}

TEST(TraceRender, SortsEventsGloballyByTs) {
  std::vector<TraceEvent> events;
  events.push_back({30.0, "\"name\":\"c\",\"ph\":\"i\",\"pid\":1,\"s\":\"t\""});
  events.push_back({10.0, "\"name\":\"a\",\"ph\":\"i\",\"pid\":1,\"s\":\"t\""});
  events.push_back({20.0, "\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"s\":\"t\""});
  const std::string json = render_trace_json(std::move(events));
  const std::vector<double> ts = extract_ts(json);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(TraceRender, MergedFlightAndSpanEventsStaySorted) {
  // Regression for gh_stats --flight --spans merging: flight records
  // carry per-ring TSC skew, so a naive per-source append interleaves
  // out-of-order. Build a scan whose rings are skewed against a span
  // set that starts earlier, and check the merged render is sorted.
  FlightScan scan;
  scan.valid_header = true;
  scan.ring_count = 2;
  scan.slots_per_ring = 8;
  const auto rec = [](u32 ring, u64 seqno, FlightPhase phase, u64 tsc) {
    FlightRecordView v;
    v.ring = ring;
    v.kind = OpKind::kInsert;
    v.phase = phase;
    v.seqno = seqno;
    v.tsc = tsc;
    return v;
  };
  // Ring 0 sits late on the axis; ring 1 early: appended per-ring this
  // is maximally out of order.
  scan.records.push_back(rec(0, 1, FlightPhase::kStart, 900'000));
  scan.records.push_back(rec(0, 1, FlightPhase::kFinish, 950'000));
  scan.records.push_back(rec(1, 2, FlightPhase::kStart, 200'000));
  scan.records.push_back(rec(1, 2, FlightPhase::kFinish, 260'000));
  scan.records_valid = scan.records.size();

  std::vector<SpanRecord> spans;
  spans.push_back(make_record(1, 100'000, 980'000));  // earliest start of all
  spans.push_back(make_record(2, 500'000, 600'000));

  u64 base = ~u64{0};
  for (const SpanRecord& s : spans) base = s.t_start < base ? s.t_start : base;
  for (const FlightRecordView& r : scan.records) base = r.tsc < base ? r.tsc : base;

  std::vector<TraceEvent> events;
  append_flight_trace_events(scan, events, base);
  append_span_trace_events(spans, /*ticks_per_ns=*/1.0, base, events);
  const std::string json = render_trace_json(std::move(events));
  const std::vector<double> ts = extract_ts(json);
  ASSERT_GE(ts.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end())) << json;
  EXPECT_NEAR(ts.front(), 0.0, 1e-6) << "shared base anchors the earliest event at 0";
}

}  // namespace
}  // namespace gh::obs
