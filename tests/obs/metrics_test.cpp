// obs/metrics.hpp unit tests: histogram bucketing and percentiles, the
// striped counter, the sampling gate, the trace hook, and registry
// attach/detach/dedupe. Latency-recording assertions branch on
// obs::kEnabled so the suite also passes under GH_OBS_OFF (where every
// hook is a constant-folded no-op).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace gh::obs {
namespace {

TEST(LatencyHistogram, BucketForIsMonotoneAndExact) {
  // Values below kSub map to themselves.
  for (u64 v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_for(v), v);
  }
  // Bucket index never decreases as the value grows.
  usize prev = 0;
  for (u64 v = 1; v < (1ull << 40); v = v * 2 + 3) {
    const usize b = LatencyHistogram::bucket_for(v);
    EXPECT_GE(b, prev) << "v=" << v;
    EXPECT_LT(b, LatencyHistogram::kBuckets);
    prev = b;
  }
  EXPECT_LT(LatencyHistogram::bucket_for(~u64{0}), LatencyHistogram::kBuckets);
}

TEST(LatencyHistogram, CountSumMax) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  for (u64 v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GT(s.sum_ns, 0u);
  EXPECT_GT(s.max_ns, 0u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogram, PercentilesWithinLogBucketError) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  // Uniform 1..10000 ticks: p50 ≈ 5000, p99 ≈ 9900 (in ticks, then
  // converted to ns). The log2 bucketing guarantees ≤ ~2^-3 relative
  // error per bucket; allow 15% to absorb midpoint interpolation.
  LatencyHistogram h;
  for (u64 v = 1; v <= 10000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  const double tpn = ticks_per_ns();
  const double p50_ticks = s.p50_ns * tpn;
  const double p99_ticks = s.p99_ns * tpn;
  EXPECT_NEAR(p50_ticks, 5000, 5000 * 0.15);
  EXPECT_NEAR(p99_ticks, 9900, 9900 * 0.15);
  EXPECT_LE(s.p50_ns, s.p95_ns);
  EXPECT_LE(s.p95_ns, s.p99_ns);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  LatencyHistogram a;
  LatencyHistogram b;
  for (u64 v = 1; v <= 100; ++v) a.record(v);
  for (u64 v = 1000; v <= 1100; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_GE(a.snapshot().max_ns, b.snapshot().max_ns);
}

/// Two disjoint sample sets (tight cluster + heavy tail) whose union has
/// percentiles neither part has on its own — the shape a sharded map's
/// aggregate must reproduce exactly.
void record_part_a(LatencyHistogram& h) {
  for (u64 v = 100; v < 200; ++v) h.record(v);
}
void record_part_b(LatencyHistogram& h) {
  for (u64 v = 0; v < 10; ++v) h.record(50'000 + v * 1000);
}

TEST(HistogramSnapshotMerge, EqualsHistogramOfUnion) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  record_part_a(a);
  record_part_a(both);
  record_part_b(b);
  record_part_b(both);

  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot uni = both.snapshot();

  // merge() folds the sparse bucket lists and re-derives the statistics
  // through the same finalize path snapshot() uses, so the aggregate is
  // EXACTLY the union histogram — not an approximation of it.
  EXPECT_EQ(merged.count, uni.count);
  EXPECT_EQ(merged.sum_ns, uni.sum_ns);
  EXPECT_EQ(merged.max_ns, uni.max_ns);
  EXPECT_EQ(merged.buckets, uni.buckets);
  EXPECT_DOUBLE_EQ(merged.mean_ns, uni.mean_ns);
  EXPECT_DOUBLE_EQ(merged.p50_ns, uni.p50_ns);
  EXPECT_DOUBLE_EQ(merged.p95_ns, uni.p95_ns);
  EXPECT_DOUBLE_EQ(merged.p99_ns, uni.p99_ns);
  // The union's tail statistics come from part B alone: p99 and max land
  // in the 50µs+ cluster even though A has 10× the samples.
  EXPECT_GT(uni.p99_ns, a.snapshot().p99_ns * 10);
}

TEST(HistogramSnapshotMerge, EmptyIsIdentityBothWays) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  LatencyHistogram h;
  record_part_a(h);
  const HistogramSnapshot base = h.snapshot();

  HistogramSnapshot lhs = base;
  lhs.merge(HistogramSnapshot{});
  EXPECT_EQ(lhs.count, base.count);
  EXPECT_EQ(lhs.buckets, base.buckets);
  EXPECT_DOUBLE_EQ(lhs.p99_ns, base.p99_ns);

  HistogramSnapshot rhs;
  rhs.merge(base);
  EXPECT_EQ(rhs.count, base.count);
  EXPECT_EQ(rhs.buckets, base.buckets);
  EXPECT_DOUBLE_EQ(rhs.p50_ns, base.p50_ns);
  EXPECT_EQ(rhs.max_ns, base.max_ns);
}

TEST(StripedCounter, AddAndLoadAcrossThreads) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  StripedCounter c;
  constexpr u64 kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  // Relaxed load-add-store stripes are not exact under contention within
  // one stripe, but threads land on distinct stripes via thread-id
  // striping; demand near-exactness and monotonicity.
  EXPECT_GT(c.load(), 4 * kPerThread * 9 / 10);
  EXPECT_LE(c.load(), 4 * kPerThread);
  c.reset();
  EXPECT_EQ(c.load(), 0u);
}

TEST(SampleGate, AdmitsOneInTwoToTheShift) {
  SampleGate gate;
  gate.set_shift(4);
  int admitted = 0;
  for (int i = 0; i < 160; ++i) admitted += gate.admit() ? 1 : 0;
  EXPECT_EQ(admitted, 10);  // every 16th, starting with the first
  gate.set_shift(0);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(gate.admit());
}

TEST(TraceHook, ReceivesOps) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  static std::vector<OpTrace> seen;
  seen.clear();
  set_trace_hook(
      [](void*, const OpTrace& op) { seen.push_back(op); }, nullptr);
  EXPECT_TRUE(trace_hook_installed());
  trace_op(OpKind::kInsert, 42, /*ticks=*/1000, /*lines=*/3);
  trace_op(OpKind::kErase, 7, /*ticks=*/0, /*lines=*/0);
  set_trace_hook(nullptr, nullptr);
  EXPECT_FALSE(trace_hook_installed());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, OpKind::kInsert);
  EXPECT_EQ(seen[0].key_hash, 42u);
  EXPECT_EQ(seen[0].lines_flushed, 3u);
  EXPECT_EQ(seen[1].kind, OpKind::kErase);
  // After clearing, trace_op is a no-op.
  trace_op(OpKind::kFind, 1, 1, 1);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(PmEventsTest, HooksAccumulate) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  pm_events().reset();
  on_pm_persist(4);
  on_pm_persist(1);
  on_pm_fence();
  EXPECT_EQ(pm_events().persist_calls.load(), 2u);
  EXPECT_EQ(pm_events().lines_flushed.load(), 5u);
  EXPECT_EQ(pm_events().fences.load(), 1u);
  pm_events().reset();
}

TEST(MetricsRegistryTest, NamedCounterDedupes) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  auto& registry = MetricsRegistry::global();
  StripedCounter& a = registry.counter("test.dedupe.counter");
  StripedCounter& b = registry.counter("test.dedupe.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  const auto snap = registry.collect();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.dedupe.counter") {
      found = true;
      EXPECT_GE(c.value, 3u);
    }
  }
  EXPECT_TRUE(found);
  registry.counter("test.dedupe.counter").reset();
}

TEST(MetricsRegistryTest, AttachDetachRecorder) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  auto& registry = MetricsRegistry::global();
  auto count_named = [&](const std::string& name) {
    int n = 0;
    for (const auto& r : registry.collect().recorders) n += (r.name == name) ? 1 : 0;
    return n;
  };
  OpRecorder rec;
  rec.record(OpKind::kInsert, 500);
  {
    Registration reg("test.attach.recorder", &rec);
    EXPECT_EQ(count_named("test.attach.recorder"), 1);
    // Duplicate names allowed (e.g. shards of one map).
    Registration reg2("test.attach.recorder", &rec);
    EXPECT_EQ(count_named("test.attach.recorder"), 2);
  }
  EXPECT_EQ(count_named("test.attach.recorder"), 0);
}

TEST(MetricsRegistryTest, RegistrationMoveDetachesOnce) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  auto& registry = MetricsRegistry::global();
  auto count_named = [&](const std::string& name) {
    int n = 0;
    for (const auto& r : registry.collect().recorders) n += (r.name == name) ? 1 : 0;
    return n;
  };
  OpRecorder rec;
  Registration outer;
  {
    Registration inner("test.move.recorder", &rec);
    outer = std::move(inner);
  }  // inner destructed moved-from: must NOT detach
  EXPECT_EQ(count_named("test.move.recorder"), 1);
  outer = Registration{};
  EXPECT_EQ(count_named("test.move.recorder"), 0);
}

TEST(OpRecorderTest, PerKindIsolationAndMerge) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  OpRecorder a;
  a.record(OpKind::kInsert, 100);
  a.record(OpKind::kFind, 200);
  EXPECT_EQ(a.of(OpKind::kInsert).count(), 1u);
  EXPECT_EQ(a.of(OpKind::kFind).count(), 1u);
  EXPECT_EQ(a.of(OpKind::kErase).count(), 0u);
  OpRecorder b;
  b.record(OpKind::kInsert, 300);
  a.merge(b);
  EXPECT_EQ(a.of(OpKind::kInsert).count(), 2u);
  a.reset();
  EXPECT_EQ(a.of(OpKind::kInsert).count(), 0u);
}

TEST(ObsOff, HooksAreNoOpsWhenDisabled) {
  if (kEnabled) GTEST_SKIP() << "hooks enabled in this build";
  // Under GH_OBS_OFF every entry point must be callable and inert.
  EXPECT_EQ(now_ticks(), 0u);
  LatencyHistogram h;
  h.record(123);
  EXPECT_EQ(h.count(), 0u);
  StripedCounter c;
  c.add(5);
  EXPECT_EQ(c.load(), 0u);
  EXPECT_FALSE(trace_hook_installed());
  on_pm_persist(10);
  on_pm_fence();
}

TEST(Clock, TicksConvertToPlausibleNs) {
  if (!kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  EXPECT_GT(ticks_per_ns(), 0.0);
  const u64 t0 = now_ticks();
  const u64 t1 = now_ticks();
  EXPECT_GE(t1, t0);
  // A back-to-back tick pair converts to far less than a millisecond.
  EXPECT_LT(ticks_to_ns(t1 - t0), 1'000'000u);
}

}  // namespace
}  // namespace gh::obs
