#include "nvm/wear_pm.hpp"

#include <gtest/gtest.h>

#include "nvm/region.hpp"

namespace gh::nvm {
namespace {

class WearPMTest : public ::testing::Test {
 protected:
  WearPMTest() : region_(NvmRegion::create_anonymous(4096)), pm_(region_.bytes()) {}

  u64* word(usize i) { return reinterpret_cast<u64*>(region_.data()) + i; }

  NvmRegion region_;
  WearPM pm_;
};

TEST_F(WearPMTest, StoresAloneDoNotWear) {
  pm_.store_u64(word(0), 1);
  pm_.atomic_store_u64(word(1), 2);
  EXPECT_EQ(pm_.report().total_line_writes, 0u);
}

TEST_F(WearPMTest, PersistWearsTheLine) {
  pm_.store_u64(word(0), 1);
  pm_.persist(word(0), 8);
  const WearReport r = pm_.report();
  EXPECT_EQ(r.total_line_writes, 1u);
  EXPECT_EQ(r.lines_touched, 1u);
  EXPECT_EQ(r.max_line_writes, 1u);
  EXPECT_EQ(pm_.line_wear(0), 1u);
}

TEST_F(WearPMTest, RepeatedFlushesAccumulate) {
  for (int i = 0; i < 10; ++i) {
    pm_.store_u64(word(0), static_cast<u64>(i));
    pm_.persist(word(0), 8);
  }
  EXPECT_EQ(pm_.line_wear(0), 10u);
  EXPECT_EQ(pm_.report().max_line_writes, 10u);
}

TEST_F(WearPMTest, MultiLinePersistWearsEachLine) {
  pm_.persist(region_.data(), 256);  // 4 lines
  EXPECT_EQ(pm_.report().total_line_writes, 4u);
  EXPECT_EQ(pm_.report().lines_touched, 4u);
  for (usize l = 0; l < 4; ++l) EXPECT_EQ(pm_.line_wear(l), 1u);
}

TEST_F(WearPMTest, ImbalanceDetectsHotLine) {
  // One hot line (like the persistent `count` header word) among many
  // cold ones.
  for (int i = 0; i < 100; ++i) pm_.persist(word(0), 8);
  for (usize l = 1; l < 10; ++l) pm_.persist(region_.data() + l * 64, 8);
  const WearReport r = pm_.report();
  EXPECT_EQ(r.max_line_writes, 100u);
  EXPECT_EQ(r.hottest_line_offset, 0u);
  EXPECT_GT(r.wear_imbalance, 5.0);
}

TEST_F(WearPMTest, ResetClearsWearButNotStats) {
  pm_.persist(word(0), 8);
  pm_.reset_wear();
  EXPECT_EQ(pm_.report().total_line_writes, 0u);
  EXPECT_EQ(pm_.stats().persist_calls, 1u);
}

TEST_F(WearPMTest, OutOfRangePersistIsIgnored) {
  alignas(kCachelineSize) u64 external = 0;
  pm_.persist(&external, 8);  // outside the tracked span
  EXPECT_EQ(pm_.report().total_line_writes, 0u);
  EXPECT_EQ(pm_.stats().persist_calls, 1u);
}

}  // namespace
}  // namespace gh::nvm
