#include "nvm/corrupting_pm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "nvm/media_error.hpp"
#include "util/types.hpp"

namespace gh::nvm {
namespace {

struct CorruptingPmTest : ::testing::Test {
  std::array<std::byte, 4096> buf{};
  CorruptingPM pm{{buf.data(), buf.size()}};
};

TEST_F(CorruptingPmTest, FlipRandomBitsIsDeterministicAndReported) {
  std::array<std::byte, 4096> shadow{};
  const auto offsets = pm.flip_random_bits(1234, 16);
  ASSERT_EQ(offsets.size(), 16u);
  EXPECT_EQ(pm.bits_flipped(), 16u);
  // Every reported offset differs from the pristine shadow; nothing else
  // does (offsets may repeat — a double flip restores the byte).
  for (usize i = 0; i < buf.size(); ++i) {
    const bool reported =
        std::find(offsets.begin(), offsets.end(), i) != offsets.end();
    if (!reported) {
      EXPECT_EQ(buf[i], shadow[i]) << "unreported flip at " << i;
    }
  }
  // Same seed on a fresh span reproduces the exact offsets.
  std::array<std::byte, 4096> buf2{};
  CorruptingPM pm2({buf2.data(), buf2.size()});
  EXPECT_EQ(pm2.flip_random_bits(1234, 16), offsets);
}

TEST_F(CorruptingPmTest, FlipBitTargetsExactBit) {
  pm.flip_bit(100, 3);
  EXPECT_EQ(buf[100], std::byte{0x08});
  pm.flip_bit(100, 3);
  EXPECT_EQ(buf[100], std::byte{0x00});
}

TEST_F(CorruptingPmTest, ArmedTearTruncatesNextMultiWordCopy) {
  std::array<unsigned char, 64> src;
  src.fill(0xab);
  pm.arm_tear(2);  // only the first two 8-byte units reach media
  pm.copy(buf.data(), src.data(), src.size());
  EXPECT_EQ(pm.tears_injected(), 1u);
  for (usize i = 0; i < 16; ++i) EXPECT_EQ(buf[i], std::byte{0xab}) << i;
  for (usize i = 16; i < 64; ++i) EXPECT_EQ(buf[i], std::byte{0x00}) << i;
  // One-shot: the next copy lands whole.
  pm.copy(buf.data(), src.data(), src.size());
  for (usize i = 0; i < 64; ++i) EXPECT_EQ(buf[i], std::byte{0xab}) << i;
  EXPECT_EQ(pm.tears_injected(), 1u);
}

TEST_F(CorruptingPmTest, TearDoesNotAffectAtomicStores) {
  pm.arm_tear(0);
  u64 word = 0;
  pm.atomic_store_u64(&word, 0xdeadbeef);  // at/below the atomic unit: never torn
  EXPECT_EQ(word, 0xdeadbeefu);
  EXPECT_EQ(pm.tears_injected(), 0u);
}

TEST_F(CorruptingPmTest, PoisonedLineThrowsOnReadAndHealsOnWrite) {
  pm.poison_line(130);  // poisons the line [128, 192)
  EXPECT_TRUE(pm.line_poisoned(128));
  EXPECT_TRUE(pm.line_poisoned(191));
  EXPECT_FALSE(pm.line_poisoned(192));

  EXPECT_NO_THROW(pm.touch_read(buf.data(), 64));  // line 0: clean
  try {
    pm.touch_read(buf.data() + 160, 8);
    FAIL() << "poisoned read did not throw";
  } catch (const MediaError& e) {
    EXPECT_EQ(e.offset(), 128u);  // line-aligned fault offset
  }
  // A read spanning into the poisoned line faults too.
  EXPECT_THROW(pm.touch_read(buf.data() + 120, 16), MediaError);
  EXPECT_EQ(pm.poison_reads(), 2u);

  // Clear-on-write: storing anywhere on the line heals it.
  pm.store_u64(reinterpret_cast<u64*>(buf.data() + 136), 7);
  EXPECT_FALSE(pm.line_poisoned(130));
  EXPECT_NO_THROW(pm.touch_read(buf.data() + 160, 8));
}

TEST_F(CorruptingPmTest, ReadsOutsideTrackedSpanNeverFault) {
  pm.poison_line(0);
  std::array<std::byte, 64> elsewhere{};
  EXPECT_NO_THROW(pm.touch_read(elsewhere.data(), elsewhere.size()));
}

TEST_F(CorruptingPmTest, StatsAccumulateLikeAnyPolicy) {
  u64 word = 0;
  pm.store_u64(&word, 1);
  pm.atomic_store_u64(&word, 2);
  pm.persist(&word, sizeof(word));
  pm.fence();
  EXPECT_EQ(pm.stats().stores, 1u);
  EXPECT_EQ(pm.stats().atomic_stores, 1u);
  EXPECT_EQ(pm.stats().persist_calls, 1u);
  EXPECT_GE(pm.stats().fences, 2u);  // persist implies a fence
  EXPECT_EQ(pm.stats().bytes_written, 16u);
}

}  // namespace
}  // namespace gh::nvm
