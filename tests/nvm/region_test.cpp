#include "nvm/region.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace gh::nvm {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(NvmRegion, AnonymousIsZeroed) {
  NvmRegion r = NvmRegion::create_anonymous(4096);
  ASSERT_TRUE(r.valid());
  EXPECT_GE(r.size(), 4096u);
  for (usize i = 0; i < r.size(); ++i) EXPECT_EQ(r.data()[i], std::byte{0});
}

TEST(NvmRegion, AnonymousIsWritable) {
  NvmRegion r = NvmRegion::create_anonymous(4096);
  std::memset(r.data(), 0xab, r.size());
  EXPECT_EQ(r.data()[100], std::byte{0xab});
}

TEST(NvmRegion, RoundsUpToPageSize) {
  NvmRegion r = NvmRegion::create_anonymous(1);
  EXPECT_GE(r.size(), 4096u);
}

TEST(NvmRegion, FileBackedPersistsAcrossMappings) {
  const std::string path = temp_path("gh_region_test.nvm");
  {
    NvmRegion r = NvmRegion::create_file(path, 8192);
    ASSERT_TRUE(r.valid());
    EXPECT_TRUE(r.file_backed());
    std::memcpy(r.data(), "hello-nvm", 10);
    r.sync();
  }
  {
    NvmRegion r = NvmRegion::open_file(path);
    ASSERT_TRUE(r.valid());
    EXPECT_GE(r.size(), 8192u);
    EXPECT_EQ(std::memcmp(r.data(), "hello-nvm", 10), 0);
  }
  std::filesystem::remove(path);
}

TEST(NvmRegion, CreateFileTruncatesExisting) {
  const std::string path = temp_path("gh_region_trunc.nvm");
  {
    NvmRegion r = NvmRegion::create_file(path, 4096);
    std::memset(r.data(), 0xff, 16);
    r.sync();
  }
  {
    NvmRegion r = NvmRegion::create_file(path, 4096);
    EXPECT_EQ(r.data()[0], std::byte{0});
  }
  std::filesystem::remove(path);
}

TEST(NvmRegion, OpenMissingFileThrows) {
  EXPECT_THROW(NvmRegion::open_file(temp_path("gh_region_nonexistent.nvm")),
               std::runtime_error);
}

TEST(NvmRegion, MoveTransfersOwnership) {
  NvmRegion a = NvmRegion::create_anonymous(4096);
  std::byte* data = a.data();
  NvmRegion b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), data);
  NvmRegion c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.data(), data);
}

TEST(NvmRegion, DefaultConstructedIsInvalid) {
  NvmRegion r;
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.size(), 0u);
}

}  // namespace
}  // namespace gh::nvm
