// Real-SIGBUS tests for the media-guard translation (media_error.hpp).
//
// The portable way to raise a genuine SIGBUS is the classic mmap hazard:
// map a file, truncate it shorter, then touch a page past the new EOF.
// That is exactly the class of fault the guard exists to translate (and
// the same delivery path a poisoned DAX line uses on Linux).
//
// These tests live in their own binary (test_sigbus): signal-handler
// state is process-global, and ctest runs each binary in its own process,
// so a wedged handler here can never contaminate unrelated suites.
#include "nvm/media_error.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>

#include "util/types.hpp"

namespace gh::nvm {
namespace {

struct TruncatedMapping {
  std::byte* base = nullptr;
  usize page = 0;
  usize mapped = 0;
  int fd = -1;
  std::string path;

  TruncatedMapping() {
    page = static_cast<usize>(::sysconf(_SC_PAGESIZE));
    mapped = 2 * page;
    char tmpl[] = "/tmp/gh_sigbus_XXXXXX";
    fd = ::mkstemp(tmpl);
    if (fd < 0) return;
    path = tmpl;
    if (::ftruncate(fd, static_cast<off_t>(mapped)) != 0) return;
    void* p = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) return;
    base = static_cast<std::byte*>(p);
    base[0] = std::byte{1};  // first page stays valid
    // Shrink the file under the mapping: touching page 1 now raises
    // SIGBUS with the faulting address inside [base+page, base+2*page).
    ::ftruncate(fd, static_cast<off_t>(page));
  }

  ~TruncatedMapping() {
    if (base) ::munmap(base, mapped);
    if (fd >= 0) ::close(fd);
    if (!path.empty()) ::unlink(path.c_str());
  }

  [[nodiscard]] std::span<const std::byte> bytes() const { return {base, mapped}; }
  [[nodiscard]] bool ok() const { return base != nullptr; }
};

TEST(MediaGuard, TranslatesSigbusToMediaErrorWithOffset) {
  TruncatedMapping m;
  ASSERT_TRUE(m.ok());
  volatile std::byte sink{};
  try {
    with_media_guard(m.bytes(), [&] { sink = m.base[m.page + 24]; });
    FAIL() << "read past truncated EOF did not fault";
  } catch (const MediaError& e) {
    EXPECT_GE(e.offset(), m.page);
    EXPECT_LT(e.offset(), m.mapped);
  }
}

TEST(MediaGuard, InRangeReadsRunNormallyAndReturnValues) {
  TruncatedMapping m;
  ASSERT_TRUE(m.ok());
  const int v = with_media_guard(m.bytes(), [&] {
    return static_cast<int>(m.base[0]);  // first page is still backed
  });
  EXPECT_EQ(v, 1);
}

TEST(MediaGuard, GuardIsReusableAfterAFault) {
  TruncatedMapping m;
  ASSERT_TRUE(m.ok());
  volatile std::byte sink{};
  // The handler longjmps with SIGBUS blocked; sigsetjmp(savemask=1) must
  // restore the mask, or the second fault here would kill the process.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(with_media_guard(m.bytes(), [&] { sink = m.base[m.page]; }),
                 MediaError);
  }
  EXPECT_EQ(with_media_guard(m.bytes(), [&] { return 42; }), 42);
}

TEST(MediaGuard, NestedGuardsUnwindToTheOutermostCoveringFrame) {
  TruncatedMapping m;
  ASSERT_TRUE(m.ok());
  volatile std::byte sink{};
  bool inner_caught = false;
  // Inner guard covers only the valid first page; the fault in page 1 is
  // outside it, so the handler must skip it, unwind it off the guard
  // stack, and longjmp to the covering OUTER frame — whose MediaError
  // then propagates out of the outer with_media_guard.
  EXPECT_THROW(with_media_guard(m.bytes(),
                                [&] {
                                  try {
                                    with_media_guard({m.base, m.page},
                                                     [&] { sink = m.base[m.page]; });
                                  } catch (const MediaError&) {
                                    inner_caught = true;
                                  }
                                }),
               MediaError);
  EXPECT_FALSE(inner_caught) << "inner guard must not catch faults outside its range";
  // The skipped inner frame was unwound, not leaked: guards still work.
  EXPECT_EQ(with_media_guard(m.bytes(), [&] { return 7; }), 7);
  EXPECT_THROW(with_media_guard(m.bytes(), [&] { sink = m.base[m.page]; }), MediaError);
}

TEST(MediaGuard, ExceptionsFromTheCallbackPropagate) {
  TruncatedMapping m;
  ASSERT_TRUE(m.ok());
  EXPECT_THROW(
      with_media_guard(m.bytes(), [&]() -> int { throw std::logic_error("x"); }),
      std::logic_error);
  // And the guard stack is balanced afterwards: a fresh fault still maps
  // to MediaError rather than killing the process.
  volatile std::byte sink{};
  EXPECT_THROW(with_media_guard(m.bytes(), [&] { sink = m.base[m.page]; }),
               MediaError);
}

#if GTEST_HAS_DEATH_TEST
TEST(MediaGuardDeathTest, FaultsOutsideAnyGuardStillDie) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TruncatedMapping m;
        if (!m.ok()) ::abort();
        volatile std::byte sink{};
        // Arm the handler at least once so the process-wide hook is
        // installed, then fault with no guard on the stack.
        with_media_guard({m.base, m.page}, [] {});
        sink = m.base[m.page];
        (void)sink;
      },
      ".*");
}
#endif

}  // namespace
}  // namespace gh::nvm
