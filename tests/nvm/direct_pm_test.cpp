#include "nvm/direct_pm.hpp"

#include <gtest/gtest.h>

#include "nvm/region.hpp"
#include "util/clock.hpp"

namespace gh::nvm {
namespace {

TEST(DirectPM, StoreWritesThrough) {
  DirectPM pm(PersistConfig::counting_only());
  alignas(8) u64 word = 0;
  pm.store_u64(&word, 42);
  EXPECT_EQ(word, 42u);
  EXPECT_EQ(pm.stats().stores, 1u);
  EXPECT_EQ(pm.stats().bytes_written, 8u);
}

TEST(DirectPM, AtomicStoreWritesThrough) {
  DirectPM pm(PersistConfig::counting_only());
  alignas(8) u64 word = 0;
  pm.atomic_store_u64(&word, 7);
  EXPECT_EQ(word, 7u);
  EXPECT_EQ(pm.stats().atomic_stores, 1u);
}

TEST(DirectPM, CopyAndFill) {
  DirectPM pm(PersistConfig::counting_only());
  alignas(8) unsigned char buf[32] = {};
  const unsigned char src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  pm.copy(buf, src, 8);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[7], 8);
  pm.fill(buf, 0xee, 32);
  EXPECT_EQ(buf[31], 0xee);
  EXPECT_EQ(pm.stats().bytes_written, 8u + 32u);
}

TEST(DirectPM, PersistCountsLinesAndFences) {
  DirectPM pm(PersistConfig::counting_only());
  alignas(kCachelineSize) std::byte buf[256] = {};
  pm.persist(buf, 8);
  EXPECT_EQ(pm.stats().persist_calls, 1u);
  EXPECT_EQ(pm.stats().lines_flushed, 1u);
  EXPECT_EQ(pm.stats().fences, 1u);
  pm.persist(buf, 256);
  EXPECT_EQ(pm.stats().lines_flushed, 1u + 4u);
  pm.persist(buf + 60, 8);  // straddles a cacheline boundary
  EXPECT_EQ(pm.stats().lines_flushed, 5u + 2u);
}

TEST(DirectPM, LatencyInjectionSlowsFlushes) {
  // 1000 flushes at 300 ns each must take at least ~300 us; at 0 ns they
  // must be much faster. This validates the paper's emulation methodology.
  NvmRegion region = NvmRegion::create_anonymous(1 << 16);

  DirectPM slow(PersistConfig{.flush_latency_ns = 300});
  Stopwatch sw;
  for (int i = 0; i < 1000; ++i) slow.persist(region.data() + (i % 512) * 64, 8);
  const u64 slow_ns = sw.elapsed_ns();
  EXPECT_GE(slow_ns, 250'000u);
  EXPECT_EQ(slow.stats().delay_ns, 300u * 1000u);

  DirectPM fast(PersistConfig{.flush_latency_ns = 0});
  sw.reset();
  for (int i = 0; i < 1000; ++i) fast.persist(region.data() + (i % 512) * 64, 8);
  const u64 fast_ns = sw.elapsed_ns();
  EXPECT_LT(fast_ns, slow_ns);
  EXPECT_EQ(fast.stats().delay_ns, 0u);
}

TEST(DirectPM, DelayScalesWithLinesFlushed) {
  DirectPM pm(PersistConfig{.flush_latency_ns = 100, .issue_real_flush = false});
  alignas(kCachelineSize) std::byte buf[512] = {};
  pm.persist(buf, 512);  // 8 lines
  EXPECT_EQ(pm.stats().delay_ns, 800u);
}

TEST(DirectPM, FlushInstructionVariantsExecute) {
  // All three instruction choices must persist without faulting on this
  // machine (unsupported ones degrade); counters behave identically.
  alignas(kCachelineSize) u64 word = 0;
  for (const FlushInstruction kind :
       {FlushInstruction::kClflush, FlushInstruction::kClflushOpt,
        FlushInstruction::kClwb}) {
    DirectPM pm(PersistConfig{.flush_latency_ns = 0, .flush_instruction = kind});
    pm.store_u64(&word, 42);
    pm.persist(&word, sizeof(word));
    EXPECT_EQ(pm.stats().lines_flushed, 1u);
    EXPECT_EQ(word, 42u);
  }
  EXPECT_FALSE(flush_keeps_line_cached(FlushInstruction::kClflush));
  EXPECT_TRUE(flush_keeps_line_cached(FlushInstruction::kClwb));
}

TEST(DirectPM, TouchReadIsFree) {
  DirectPM pm(PersistConfig::counting_only());
  alignas(8) u64 word = 0;
  pm.touch_read(&word, 8);
  EXPECT_EQ(pm.stats().stores, 0u);
  EXPECT_EQ(pm.stats().persist_calls, 0u);
}

}  // namespace
}  // namespace gh::nvm
