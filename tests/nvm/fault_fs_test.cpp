#include "nvm/fault_fs.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "nvm/region.hpp"

namespace gh::nvm {
namespace {

namespace stdfs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (stdfs::temp_directory_path() / name).string();
}

void touch(const std::string& path, const std::string& content = "x") {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

TEST(FaultFs, ParentDir) {
  EXPECT_EQ(parent_dir("/a/b/c.gh"), "/a/b");
  EXPECT_EQ(parent_dir("/c.gh"), "/");
  EXPECT_EQ(parent_dir("c.gh"), ".");
}

TEST(FaultFs, StraightThroughWithoutPolicy) {
  ASSERT_EQ(FaultFs::installed(), nullptr);
  const std::string a = temp_path("faultfs_a");
  const std::string b = temp_path("faultfs_b");
  stdfs::remove(a);
  stdfs::remove(b);
  touch(a);
  EXPECT_TRUE(FaultFs::rename(a, b));
  EXPECT_FALSE(stdfs::exists(a));
  EXPECT_TRUE(stdfs::exists(b));
  EXPECT_TRUE(FaultFs::sync_dir(parent_dir(b)));
  EXPECT_TRUE(FaultFs::remove(b));
  EXPECT_FALSE(stdfs::exists(b));
  EXPECT_FALSE(FaultFs::remove(b));  // already gone
}

TEST(FaultFs, PolicySeesStepsInOrderAndScopedInstallResets) {
  const std::string a = temp_path("faultfs_steps_a");
  const std::string b = temp_path("faultfs_steps_b");
  stdfs::remove(a);
  stdfs::remove(b);
  touch(a);
  CrashScheduleFs policy;
  {
    const ScopedFsPolicy installed(&policy);
    ASSERT_EQ(FaultFs::installed(), &policy);
    EXPECT_TRUE(FaultFs::rename(a, b));
    EXPECT_TRUE(FaultFs::sync_dir(parent_dir(b)));
    EXPECT_TRUE(FaultFs::remove(b));
  }
  EXPECT_EQ(FaultFs::installed(), nullptr);
  ASSERT_EQ(policy.trace.size(), 3u);
  EXPECT_EQ(policy.trace[0].op, FsOp::kRename);
  EXPECT_EQ(policy.trace[0].path, a);
  EXPECT_EQ(policy.trace[0].path2, b);
  EXPECT_EQ(policy.trace[1].op, FsOp::kSyncDir);
  EXPECT_EQ(policy.trace[2].op, FsOp::kRemove);
  EXPECT_EQ(policy.trace[2].path, b);
}

TEST(FaultFs, FailAtSkipsTheOperation) {
  const std::string a = temp_path("faultfs_fail_a");
  const std::string b = temp_path("faultfs_fail_b");
  stdfs::remove(a);
  stdfs::remove(b);
  touch(a);
  CrashScheduleFs policy;
  policy.fail_at = 0;
  const ScopedFsPolicy installed(&policy);
  EXPECT_FALSE(FaultFs::rename(a, b));
  EXPECT_TRUE(stdfs::exists(a)) << "a failed rename must not move the file";
  EXPECT_FALSE(stdfs::exists(b));
  EXPECT_TRUE(FaultFs::rename(a, b));  // step 1: proceeds
  stdfs::remove(b);
}

TEST(FaultFs, CrashAtThrowsBeforeTheOperation) {
  const std::string a = temp_path("faultfs_crash_a");
  stdfs::remove(a);
  touch(a);
  CrashScheduleFs policy;
  policy.crash_at = 0;
  const ScopedFsPolicy installed(&policy);
  EXPECT_THROW((void)FaultFs::remove(a), SimulatedCrash);
  EXPECT_TRUE(stdfs::exists(a)) << "the interrupted operation must not execute";
  EXPECT_TRUE(FaultFs::remove(a));  // step 1: proceeds
}

TEST(FaultFs, RegionCreateAndSyncAreObserved) {
  const std::string path = temp_path("faultfs_region.bin");
  stdfs::remove(path);
  CrashScheduleFs policy;
  {
    const ScopedFsPolicy installed(&policy);
    NvmRegion region = NvmRegion::create_file(path, 4096);
    std::memset(region.data(), 0x5A, 16);
    region.sync();
  }
  ASSERT_EQ(policy.trace.size(), 2u);
  EXPECT_EQ(policy.trace[0].op, FsOp::kCreate);
  EXPECT_EQ(policy.trace[0].path, path);
  EXPECT_EQ(policy.trace[1].op, FsOp::kSyncData);
  EXPECT_EQ(policy.trace[1].path, path);
  stdfs::remove(path);
}

TEST(FaultFs, PublishRegionFileHappyPath) {
  const std::string tmp = temp_path("faultfs_pub.tmp");
  const std::string final_path = temp_path("faultfs_pub.bin");
  stdfs::remove(tmp);
  stdfs::remove(final_path);
  NvmRegion region = NvmRegion::create_file(tmp, 4096);
  std::memset(region.data(), 0x7E, 64);
  publish_region_file(region, tmp, final_path, "test publish");
  EXPECT_FALSE(stdfs::exists(tmp));
  ASSERT_TRUE(stdfs::exists(final_path));
  std::ifstream in(final_path, std::ios::binary);
  char c = 0;
  in.get(c);
  EXPECT_EQ(static_cast<unsigned char>(c), 0x7E);
  stdfs::remove(final_path);
}

TEST(FaultFs, PublishRegionFileUnlinksTempOnRenameFailure) {
  const std::string tmp = temp_path("faultfs_pubfail.tmp");
  const std::string final_path = temp_path("faultfs_pubfail.bin");
  stdfs::remove(tmp);
  stdfs::remove(final_path);
  NvmRegion region = NvmRegion::create_file(tmp, 4096);
  CrashScheduleFs policy;
  policy.fail_at = 1;  // steps under publish: 0=kSyncData, 1=kRename
  const ScopedFsPolicy installed(&policy);
  EXPECT_THROW(publish_region_file(region, tmp, final_path, "test publish"),
               std::runtime_error);
  EXPECT_FALSE(stdfs::exists(tmp)) << "failed publish must unlink the temp file";
  EXPECT_FALSE(stdfs::exists(final_path));
}

TEST(FaultFs, ReclaimOrphan) {
  const std::string path = temp_path("faultfs_orphan");
  stdfs::remove(path);
  EXPECT_FALSE(reclaim_orphan(path));
  touch(path);
  EXPECT_TRUE(reclaim_orphan(path));
  EXPECT_FALSE(stdfs::exists(path));
}

}  // namespace
}  // namespace gh::nvm
