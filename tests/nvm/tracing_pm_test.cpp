#include "nvm/tracing_pm.hpp"

#include <gtest/gtest.h>

#include "cachesim/cache_sim.hpp"
#include "nvm/region.hpp"

namespace gh::nvm {
namespace {

cachesim::CacheConfig tiny() {
  cachesim::CacheConfig cfg{{{1024, 2}, {4096, 4}}};
  cfg.prefetch_degree = 0;
  return cfg;
}

class TracingPMTest : public ::testing::Test {
 protected:
  TracingPMTest() : region_(NvmRegion::create_anonymous(4096)), sim_(tiny()), pm_(sim_) {}

  u64* word(usize i) { return reinterpret_cast<u64*>(region_.data()) + i; }

  NvmRegion region_;
  cachesim::CacheSim sim_;
  TracingPM pm_;
};

TEST_F(TracingPMTest, StoresWriteThroughAndTouchTheCache) {
  pm_.store_u64(word(0), 42);
  EXPECT_EQ(*word(0), 42u);
  EXPECT_EQ(sim_.llc_misses(), 1u);  // cold line
  pm_.store_u64(word(1), 43);        // same line: hit
  EXPECT_EQ(sim_.llc_misses(), 1u);
  EXPECT_EQ(pm_.stats().stores, 2u);
}

TEST_F(TracingPMTest, TouchReadFeedsTheSimulator) {
  pm_.touch_read(word(0), 8);
  EXPECT_EQ(sim_.llc_misses(), 1u);
  pm_.touch_read(word(0), 8);
  EXPECT_EQ(sim_.llc_misses(), 1u);  // now cached
}

TEST_F(TracingPMTest, PersistInvalidatesCausingRereadMiss) {
  pm_.store_u64(word(0), 1);
  EXPECT_EQ(sim_.llc_misses(), 1u);
  pm_.persist(word(0), 8);  // simulated clflush
  EXPECT_EQ(sim_.flushes(), 1u);
  pm_.touch_read(word(0), 8);
  EXPECT_EQ(sim_.llc_misses(), 2u);  // the paper's logging-cost mechanism
  EXPECT_EQ(pm_.stats().persist_calls, 1u);
  EXPECT_EQ(pm_.stats().lines_flushed, 1u);
}

TEST_F(TracingPMTest, CopyAndFillWriteThrough) {
  const unsigned char src[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  pm_.copy(region_.data() + 128, src, 16);
  EXPECT_EQ(region_.data()[128], std::byte{1});
  pm_.fill(region_.data() + 256, 0x7f, 32);
  EXPECT_EQ(region_.data()[287], std::byte{0x7f});
  EXPECT_EQ(pm_.stats().bytes_written, 16u + 32u);
}

TEST_F(TracingPMTest, AtomicStoreCountsSeparately) {
  pm_.atomic_store_u64(word(0), 5);
  EXPECT_EQ(*word(0), 5u);
  EXPECT_EQ(pm_.stats().atomic_stores, 1u);
  EXPECT_EQ(pm_.stats().stores, 0u);
}

}  // namespace
}  // namespace gh::nvm
