#include "nvm/persist.hpp"

#include <gtest/gtest.h>

namespace gh::nvm {
namespace {

TEST(PersistMath, LinesSpanned) {
  alignas(kCachelineSize) std::byte buf[256];
  EXPECT_EQ(lines_spanned(buf, 0), 0u);
  EXPECT_EQ(lines_spanned(buf, 1), 1u);
  EXPECT_EQ(lines_spanned(buf, 64), 1u);
  EXPECT_EQ(lines_spanned(buf, 65), 2u);
  EXPECT_EQ(lines_spanned(buf + 63, 2), 2u);   // straddles a boundary
  EXPECT_EQ(lines_spanned(buf + 8, 56), 1u);   // ends exactly at boundary
  EXPECT_EQ(lines_spanned(buf + 8, 57), 2u);
  EXPECT_EQ(lines_spanned(buf, 256), 4u);
}

TEST(PersistMath, LineBegin) {
  alignas(kCachelineSize) std::byte buf[128];
  EXPECT_EQ(line_begin(buf), buf);
  EXPECT_EQ(line_begin(buf + 1), buf);
  EXPECT_EQ(line_begin(buf + 63), buf);
  EXPECT_EQ(line_begin(buf + 64), buf + 64);
}

TEST(PersistStats, Accumulate) {
  PersistStats a, b;
  a.stores = 1;
  a.lines_flushed = 2;
  b.stores = 10;
  b.fences = 5;
  a += b;
  EXPECT_EQ(a.stores, 11u);
  EXPECT_EQ(a.lines_flushed, 2u);
  EXPECT_EQ(a.fences, 5u);
  a.clear();
  EXPECT_EQ(a.stores, 0u);
}

TEST(PersistStats, ToStringMentionsCounters) {
  PersistStats s;
  s.stores = 3;
  s.lines_flushed = 7;
  const std::string str = s.to_string();
  EXPECT_NE(str.find("stores=3"), std::string::npos);
  EXPECT_NE(str.find("lines_flushed=7"), std::string::npos);
}

TEST(PersistInstructions, FlushAndFenceDoNotCrash) {
  alignas(kCachelineSize) volatile u64 word = 42;
  flush_line(const_cast<u64*>(&word));
  store_fence();
  EXPECT_EQ(word, 42u);
}

TEST(PersistConfig, Presets) {
  EXPECT_EQ(PersistConfig::emulated_nvm().flush_latency_ns, 300u);
  EXPECT_EQ(PersistConfig::dram().flush_latency_ns, 0u);
  EXPECT_FALSE(PersistConfig::counting_only().issue_real_flush);
}

}  // namespace
}  // namespace gh::nvm
