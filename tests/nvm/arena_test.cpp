#include "nvm/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"

namespace gh::nvm {
namespace {

class ArenaTest : public ::testing::Test {
 protected:
  using Arena = PersistentArena<DirectPM>;

  ArenaTest()
      : region_(NvmRegion::create_anonymous(Arena::required_bytes(1024))),
        arena_(pm_, region_.bytes().first(Arena::required_bytes(1024)), true) {}

  NvmRegion region_;
  DirectPM pm_{PersistConfig::counting_only()};
  Arena arena_;
};

TEST_F(ArenaTest, AppendReturnsReadableOffsets) {
  const auto a = arena_.append("hello", 5);
  const auto b = arena_.append("world!", 6);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(std::memcmp(arena_.read(*a, 5).data(), "hello", 5), 0);
  EXPECT_EQ(std::memcmp(arena_.read(*b, 6).data(), "world!", 6), 0);
}

TEST_F(ArenaTest, OffsetsAreEightByteAligned) {
  const auto a = arena_.append("x", 1);
  const auto b = arena_.append("y", 1);
  EXPECT_EQ(*a % kAtomicUnit, 0u);
  EXPECT_EQ(*b % kAtomicUnit, 0u);
  EXPECT_EQ(*b - *a, 8u);  // 1 byte rounds to one atomic unit
}

TEST_F(ArenaTest, PaddingIsZeroed) {
  arena_.append("abc", 3);
  const auto bytes = arena_.read(0, 8);
  for (usize i = 3; i < 8; ++i) EXPECT_EQ(bytes[i], std::byte{0});
}

TEST_F(ArenaTest, FullArenaRejectsAppend) {
  std::string big(1000, 'z');
  ASSERT_TRUE(arena_.append(big.data(), big.size()).has_value());
  std::string more(100, 'w');
  EXPECT_FALSE(arena_.append(more.data(), more.size()).has_value());
  // But a small one still fits the remainder.
  EXPECT_TRUE(arena_.append("t", 1).has_value());
}

TEST_F(ArenaTest, HeadAndRemainingTrackUsage) {
  EXPECT_EQ(arena_.head(), 0u);
  EXPECT_EQ(arena_.remaining(), arena_.capacity());
  arena_.append("12345678", 8);
  EXPECT_EQ(arena_.head(), 8u);
  EXPECT_EQ(arena_.remaining(), arena_.capacity() - 8);
}

TEST_F(ArenaTest, ReattachSeesCommittedRecords) {
  arena_.append("durable", 7);
  PersistentArena<DirectPM> reattached(
      pm_, region_.bytes().first(PersistentArena<DirectPM>::required_bytes(1024)),
      /*format=*/false);
  EXPECT_EQ(reattached.head(), 8u);
  EXPECT_EQ(std::memcmp(reattached.read(0, 7).data(), "durable", 7), 0);
}

TEST_F(ArenaTest, ReadBeyondHeadDies) {
  arena_.append("ab", 2);
  EXPECT_DEATH((void)arena_.read(0, 64), "beyond committed");
}

TEST(ArenaCrash, InterruptedAppendIsForgotten) {
  using Arena = PersistentArena<ShadowPM>;
  NvmRegion region = NvmRegion::create_anonymous(Arena::required_bytes(1024));
  auto mem = region.bytes().first(Arena::required_bytes(1024));
  ShadowPM pm(mem);
  Arena arena(pm, mem, true);
  ASSERT_TRUE(arena.append("first", 5).has_value());

  // Find the event window of one append, then crash at every point.
  const u64 before = pm.event_count();
  ASSERT_TRUE(arena.append("second", 6).has_value());
  const u64 after = pm.event_count();

  for (u64 crash_at = 0; crash_at < after - before; ++crash_at) {
    std::fill(mem.begin(), mem.end(), std::byte{0});
    ShadowPM pm2(mem);
    Arena arena2(pm2, mem, true);
    ASSERT_TRUE(arena2.append("first", 5).has_value());
    pm2.crash_at_event(pm2.event_count() + crash_at);
    bool crashed = false;
    try {
      (void)arena2.append("second", 6);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    pm2.crash_at_event(ShadowPM::no_crash());
    const auto image = pm2.materialize_crash_image(CrashMode::kRandomEviction, crash_at);
    pm2.reset_to_image(image);
    Arena rebooted(pm2, mem, /*format=*/false);
    // Head is either before or after the append — never in between, and
    // whatever it covers is fully readable.
    EXPECT_TRUE(rebooted.head() == 8u || rebooted.head() == 16u) << rebooted.head();
    EXPECT_EQ(std::memcmp(rebooted.read(0, 5).data(), "first", 5), 0);
    if (rebooted.head() == 16u) {
      // The record was persisted before the head store executed, so a
      // committed head always covers complete data (even when the head
      // itself became durable through eviction after the crash point).
      EXPECT_EQ(std::memcmp(rebooted.read(8, 6).data(), "second", 6), 0);
    }
    (void)crashed;
  }
}

}  // namespace
}  // namespace gh::nvm
