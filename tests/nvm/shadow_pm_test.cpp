#include "nvm/shadow_pm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace gh::nvm {
namespace {

class ShadowPMTest : public ::testing::Test {
 protected:
  // Cacheline-aligned so the word<->line geometry in the tests below is
  // exact (word 0..7 share line 0, word 8 starts line 1, ...).
  struct alignas(kCachelineSize) AlignedBuf {
    std::byte bytes[1024] = {};
  };

  ShadowPMTest() : pm_({live_.bytes, sizeof(live_.bytes)}) {}

  std::byte* data() { return live_.bytes; }
  u64* word(usize i) { return reinterpret_cast<u64*>(live_.bytes) + i; }
  u64 shadow_word(const std::vector<std::byte>& img, usize i) {
    u64 v;
    std::memcpy(&v, img.data() + i * 8, 8);
    return v;
  }

  AlignedBuf live_;
  ShadowPM pm_;
};

TEST_F(ShadowPMTest, UnpersistedStoreDoesNotReachShadow) {
  pm_.store_u64(word(0), 42);
  const auto img = pm_.materialize_crash_image(CrashMode::kNothingEvicted);
  EXPECT_EQ(shadow_word(img, 0), 0u);
  EXPECT_EQ(pm_.dirty_word_count(), 1u);
}

TEST_F(ShadowPMTest, PersistedStoreReachesShadow) {
  pm_.store_u64(word(0), 42);
  pm_.persist(word(0), 8);
  const auto img = pm_.materialize_crash_image(CrashMode::kNothingEvicted);
  EXPECT_EQ(shadow_word(img, 0), 42u);
  EXPECT_EQ(pm_.dirty_word_count(), 0u);
}

TEST_F(ShadowPMTest, PersistCoversWholeCacheline) {
  // Two words in the same cacheline: flushing one persists both, exactly
  // like real clflush.
  pm_.store_u64(word(0), 1);
  pm_.store_u64(word(1), 2);
  pm_.persist(word(0), 8);
  const auto img = pm_.materialize_crash_image(CrashMode::kNothingEvicted);
  EXPECT_EQ(shadow_word(img, 0), 1u);
  EXPECT_EQ(shadow_word(img, 1), 2u);
}

TEST_F(ShadowPMTest, DistinctCachelinesPersistIndependently) {
  pm_.store_u64(word(0), 1);
  pm_.store_u64(word(8), 2);  // next cacheline (8 words * 8 bytes = 64)
  pm_.persist(word(0), 8);
  const auto img = pm_.materialize_crash_image(CrashMode::kNothingEvicted);
  EXPECT_EQ(shadow_word(img, 0), 1u);
  EXPECT_EQ(shadow_word(img, 8), 0u);
}

TEST_F(ShadowPMTest, AllEvictedImageSeesEverything) {
  pm_.store_u64(word(0), 1);
  pm_.store_u64(word(20), 2);
  const auto img = pm_.materialize_crash_image(CrashMode::kAllEvicted);
  EXPECT_EQ(shadow_word(img, 0), 1u);
  EXPECT_EQ(shadow_word(img, 20), 2u);
}

TEST_F(ShadowPMTest, RandomEvictionIsSeedDeterministicAndPartial) {
  for (usize i = 0; i < 64; ++i) pm_.store_u64(word(i), i + 1);
  const auto a = pm_.materialize_crash_image(CrashMode::kRandomEviction, 7);
  const auto b = pm_.materialize_crash_image(CrashMode::kRandomEviction, 7);
  EXPECT_EQ(a, b);
  // With 64 dirty words, both "all survived" and "none survived" are
  // astronomically unlikely for a fair coin.
  usize survived = 0;
  for (usize i = 0; i < 64; ++i) {
    if (shadow_word(a, i) != 0) ++survived;
  }
  EXPECT_GT(survived, 0u);
  EXPECT_LT(survived, 64u);
  // A different seed gives a different subset (whp).
  const auto c = pm_.materialize_crash_image(CrashMode::kRandomEviction, 8);
  EXPECT_NE(a, c);
}

TEST_F(ShadowPMTest, CopyAndFillTrackDirtiness) {
  const unsigned char src[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  pm_.copy(data() + 64, src, 16);
  EXPECT_EQ(pm_.dirty_word_count(), 2u);
  pm_.fill(data() + 128, 0xff, 64);
  EXPECT_EQ(pm_.dirty_word_count(), 2u + 8u);
  pm_.persist(data() + 64, 16);
  EXPECT_EQ(pm_.dirty_word_count(), 8u);
}

TEST_F(ShadowPMTest, CrashThrowsAtScheduledEvent) {
  pm_.store_u64(word(0), 1);  // event 0
  pm_.crash_at_event(2);
  pm_.store_u64(word(1), 2);  // event 1
  EXPECT_THROW(pm_.store_u64(word(2), 3), SimulatedCrash);
  // The crashed store must not have executed.
  EXPECT_EQ(*word(2), 0u);
}

TEST_F(ShadowPMTest, EventCountCoversAllOperations) {
  pm_.store_u64(word(0), 1);
  pm_.atomic_store_u64(word(1), 2);
  pm_.persist(word(0), 16);
  pm_.fence();
  const unsigned char b = 1;
  pm_.copy(data() + 256, &b, 1);
  pm_.fill(data() + 320, 0, 8);
  EXPECT_EQ(pm_.event_count(), 6u);
}

TEST_F(ShadowPMTest, ResetToImageClearsDirtyState) {
  pm_.store_u64(word(0), 42);
  const auto img = pm_.materialize_crash_image(CrashMode::kNothingEvicted);
  pm_.reset_to_image(img);
  EXPECT_EQ(*word(0), 0u);  // live now matches the pre-store durable state
  EXPECT_EQ(pm_.dirty_word_count(), 0u);
  // And subsequent persists work off the new baseline.
  pm_.store_u64(word(0), 9);
  pm_.persist(word(0), 8);
  const auto img2 = pm_.materialize_crash_image(CrashMode::kNothingEvicted);
  EXPECT_EQ(shadow_word(img2, 0), 9u);
}

TEST_F(ShadowPMTest, StatsMirrorTraffic) {
  pm_.store_u64(word(0), 1);
  pm_.atomic_store_u64(word(1), 2);
  pm_.persist(word(0), 8);
  EXPECT_EQ(pm_.stats().stores, 1u);
  EXPECT_EQ(pm_.stats().atomic_stores, 1u);
  EXPECT_EQ(pm_.stats().persist_calls, 1u);
  EXPECT_GE(pm_.stats().lines_flushed, 1u);
}

}  // namespace
}  // namespace gh::nvm
