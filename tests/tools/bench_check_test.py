#!/usr/bin/env python3
"""Regression tests for tools/bench_check (the perf-trajectory gate).

The gate sits in CI's fast lane, so its failure modes matter as much as
its detections: a missing or unreadable baseline must *skip* (exit 0,
with a clear note) rather than traceback, and non-finite metric values
must be excluded from the comparison rather than poisoning it — while a
genuine >threshold regression in a finite metric still fails the run.

Run directly or via ctest; the bench_check path comes from the
BENCH_CHECK env var (default: tools/bench_check relative to the repo
root, two directories up from this file).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

BENCH_CHECK = Path(
    os.environ.get(
        "BENCH_CHECK", Path(__file__).resolve().parents[2] / "tools" / "bench_check"
    )
)


def write_bench(
    root: Path, pr: int, metrics: dict, raw: str = None, config_extra: dict = None
) -> Path:
    path = root / f"BENCH_PR{pr}.json"
    if raw is not None:
        path.write_text(raw)
        return path
    config = {"keys": 1000, "batch": 32, "seed": 42, "smoke": False}
    if config_extra:
        config.update(config_extra)
    doc = {
        "bench": "canonical",
        "version": 1,
        "config": config,
        "metrics": metrics,
    }
    path.write_text(json.dumps(doc))
    return path


def run_gate(root: Path, *extra: str):
    proc = subprocess.run(
        [sys.executable, str(BENCH_CHECK), f"--dir={root}", *extra],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


class BenchCheckTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    # --- missing / first-run baselines --------------------------------------

    def test_empty_dir_skips(self):
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("no baseline, skipping", out)

    def test_first_pinned_run_skips(self):
        write_bench(self.root, 7, {"qps": {"value": 100.0, "direction": "higher"}})
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("no baseline, skipping", out)

    def test_missing_current_file_skips(self):
        rc, out = run_gate(self.root, f"--current={self.root / 'BENCH_PR7.json'}")
        self.assertEqual(rc, 0, out)
        self.assertIn("nothing to gate", out)

    def test_corrupt_predecessor_skips(self):
        write_bench(self.root, 6, {}, raw="{not json")
        write_bench(self.root, 7, {"qps": {"value": 100.0, "direction": "higher"}})
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("no baseline, skipping", out)

    def test_metricless_predecessor_skips(self):
        write_bench(self.root, 6, {}, raw=json.dumps({"bench": "canonical"}))
        write_bench(self.root, 7, {"qps": {"value": 100.0, "direction": "higher"}})
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("no baseline, skipping", out)

    def test_corrupt_current_fails_with_message(self):
        write_bench(self.root, 6, {"qps": {"value": 100.0, "direction": "higher"}})
        write_bench(self.root, 7, {}, raw="}{")
        rc, out = run_gate(self.root)
        self.assertNotEqual(rc, 0)
        self.assertIn("unreadable", out)
        self.assertNotIn("Traceback", out)

    # --- non-finite metric values -------------------------------------------

    def test_nan_and_inf_values_are_skipped_not_failed(self):
        # json.load parses NaN/Infinity natively — exactly what a bench
        # emitting a 0/0 ratio produces.
        write_bench(
            self.root,
            6,
            {
                "nan_metric": {"value": float("nan"), "direction": "lower"},
                "inf_metric": {"value": 1.0, "direction": "lower"},
                "good": {"value": 100.0, "direction": "lower"},
            },
        )
        write_bench(
            self.root,
            7,
            {
                "nan_metric": {"value": 5.0, "direction": "lower"},
                "inf_metric": {"value": float("inf"), "direction": "lower"},
                "good": {"value": 101.0, "direction": "lower"},
            },
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("skip  nan_metric", out)
        self.assertIn("skip  inf_metric", out)
        self.assertIn("ok    good", out)

    def test_non_finite_does_not_mask_a_real_regression(self):
        write_bench(
            self.root,
            6,
            {
                "nan_metric": {"value": float("nan"), "direction": "lower"},
                "latency": {"value": 100.0, "direction": "lower"},
            },
        )
        write_bench(
            self.root,
            7,
            {
                "nan_metric": {"value": float("nan"), "direction": "lower"},
                "latency": {"value": 150.0, "direction": "lower"},
            },
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 1, out)
        self.assertIn("FAIL", out)
        self.assertIn("latency", out)

    def test_non_numeric_value_is_skipped(self):
        write_bench(self.root, 6, {"qps": {"value": "fast", "direction": "higher"}})
        write_bench(self.root, 7, {"qps": {"value": 100.0, "direction": "higher"}})
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("skip  qps", out)

    # --- the gate still gates -----------------------------------------------

    def test_regression_still_fails(self):
        write_bench(self.root, 6, {"qps": {"value": 100.0, "direction": "higher"}})
        write_bench(self.root, 7, {"qps": {"value": 80.0, "direction": "higher"}})
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 1, out)
        self.assertIn("FAIL", out)

    def test_improvement_passes(self):
        write_bench(self.root, 6, {"qps": {"value": 100.0, "direction": "higher"}})
        write_bench(self.root, 7, {"qps": {"value": 130.0, "direction": "higher"}})
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("no regressions", out)

    # --- machine-speed drift rescaling --------------------------------------

    def test_drift_rescales_timed_metric(self):
        # Same code, box 25% slower: raw latency +20% must pass once the
        # calibration ratio rescales it to -4%.
        write_bench(
            self.root,
            6,
            {"lat_ns_per_op": {"value": 100.0, "direction": "lower"}},
            config_extra={"calibration_ns": 1.0},
        )
        write_bench(
            self.root,
            7,
            {"lat_ns_per_op": {"value": 120.0, "direction": "lower"}},
            config_extra={"calibration_ns": 1.25},
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("machine-speed drift 1.25x", out)
        self.assertIn("rescaled", out)

    def test_drift_rescales_qps_the_other_way(self):
        # Inverse-time metric on a slower box: raw -15% QPS scales *up*.
        write_bench(
            self.root,
            6,
            {"serve_qps": {"value": 100.0, "direction": "higher"}},
            config_extra={"calibration_ns": 1.0},
        )
        write_bench(
            self.root,
            7,
            {"serve_qps": {"value": 85.0, "direction": "higher"}},
            config_extra={"calibration_ns": 1.25},
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 0, out)
        self.assertIn("rescaled", out)

    def test_drift_does_not_mask_real_regression(self):
        # +50% raw on a 1.25x-slower box is still +20% real — must fail.
        write_bench(
            self.root,
            6,
            {"lat_ns_per_op": {"value": 100.0, "direction": "lower"}},
            config_extra={"calibration_ns": 1.0},
        )
        write_bench(
            self.root,
            7,
            {"lat_ns_per_op": {"value": 150.0, "direction": "lower"}},
            config_extra={"calibration_ns": 1.25},
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 1, out)
        self.assertIn("FAIL", out)

    def test_dimensionless_metric_is_never_rescaled(self):
        # A speedup ratio shrinking 20% is a real regression no matter how
        # the machine drifted.
        write_bench(
            self.root,
            6,
            {"batch_speedup": {"value": 2.0, "direction": "higher"}},
            config_extra={"calibration_ns": 1.0},
        )
        write_bench(
            self.root,
            7,
            {"batch_speedup": {"value": 1.6, "direction": "higher"}},
            config_extra={"calibration_ns": 1.25},
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 1, out)
        self.assertIn("FAIL", out)
        self.assertNotIn("rescaled", out)

    def test_missing_baseline_calibration_gates_unrescaled(self):
        # Transition case: the predecessor predates calibration — behave
        # exactly like the pre-calibration gate.
        write_bench(self.root, 6, {"lat_ns_per_op": {"value": 100.0, "direction": "lower"}})
        write_bench(
            self.root,
            7,
            {"lat_ns_per_op": {"value": 120.0, "direction": "lower"}},
            config_extra={"calibration_ns": 1.25},
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 1, out)
        self.assertIn("FAIL", out)
        self.assertNotIn("rescaled", out)

    def test_implausible_calibration_ratio_is_ignored(self):
        write_bench(
            self.root,
            6,
            {"lat_ns_per_op": {"value": 100.0, "direction": "lower"}},
            config_extra={"calibration_ns": 1.0},
        )
        write_bench(
            self.root,
            7,
            {"lat_ns_per_op": {"value": 120.0, "direction": "lower"}},
            config_extra={"calibration_ns": 3.0},
        )
        rc, out = run_gate(self.root)
        self.assertEqual(rc, 1, out)
        self.assertIn("implausible", out)
        self.assertIn("FAIL", out)


if __name__ == "__main__":
    unittest.main()
