// Torture: lock-free readers vs writers while shards resize online.
//
// The concurrent wrapper's read path is where the online resize earns
// its keep — or corrupts data. While a shard migrates, readers probe a
// dual view (migration target first, then the draining old table) under
// one seqlock epoch; writers help the drain along, which can
// restructure the shard (start, drain, finalize, emergency-merge) on
// ANY mutating op. This suite hammers exactly those windows from many
// threads and asserts reads are always exact — a hit returns the
// precise value written, never stale, torn, or duplicated state. Runs
// under TSan in CI (concurrency lane).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/concurrent_map.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

constexpr u64 kWriters = 4;
constexpr u64 kReaders = 4;
constexpr u64 kKeysPerWriter = 3000;

u64 torture_key(u64 writer, u64 i) { return 1 + writer * kKeysPerWriter + i; }
u64 torture_value(u64 key) { return key * 31 + 7; }

MapOptions torture_options() {
  MapOptions o;
  o.initial_cells = 256;  // tiny per-shard tables: migrations fire early and often
  o.group_size = 8;
  o.flush_latency_ns = 0;
  o.online_resize = true;
  o.migrate_groups_per_op = 1;
  return o;
}

TEST(MigrationTorture, ReadsStayExactWhileShardsResizeOnline) {
  ConcurrentGroupHashMap map(4, torture_options());

  // progress[w] = keys writer w has durably put (monotone; readers only
  // assert about the committed prefix). erased[w] flips once writer w
  // has removed every 5th of its keys.
  std::vector<std::atomic<u64>> progress(kWriters);
  std::vector<std::atomic<bool>> erased(kWriters);
  for (auto& p : progress) p.store(0);
  for (auto& e : erased) e.store(false);
  std::atomic<bool> done{false};
  std::atomic<u64> failures{0};

  std::vector<std::thread> writers;
  for (u64 w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (u64 i = 0; i < kKeysPerWriter; ++i) {
        const u64 k = torture_key(w, i);
        map.put(k, torture_value(k));
        progress[w].store(i + 1, std::memory_order_release);
      }
      // Erase phase: delete every 5th key, so the dual-view read path is
      // exercised against tombstoned state in both halves too.
      for (u64 i = 0; i < kKeysPerWriter; i += 5) {
        map.erase(torture_key(w, i));
      }
      erased[w].store(true, std::memory_order_release);
    });
  }

  std::vector<std::thread> readers;
  for (u64 r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(r * 7919 + 13);
      while (!done.load(std::memory_order_acquire)) {
        const u64 w = rng.next_below(kWriters);
        const u64 p = progress[w].load(std::memory_order_acquire);
        if (p == 0) continue;
        const u64 i = rng.next_below(p);
        const u64 k = torture_key(w, i);
        const auto got = map.get(k);
        if (got) {
          // A hit must be the exact committed value, whatever shard
          // restructure raced this probe.
          if (*got != torture_value(k)) failures.fetch_add(1);
        } else if (i % 5 != 0) {
          // Only the erase phase may remove keys, and only multiples
          // of 5; any other miss inside the committed prefix is a
          // lost committed write.
          failures.fetch_add(1);
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);

  // Quiesced end state: every surviving key exact, every erased key gone.
  for (u64 w = 0; w < kWriters; ++w) {
    for (u64 i = 0; i < kKeysPerWriter; ++i) {
      const u64 k = torture_key(w, i);
      const auto got = map.get(k);
      if (i % 5 == 0) {
        ASSERT_FALSE(got.has_value()) << "erased key " << k << " resurrected";
      } else {
        ASSERT_TRUE(got.has_value()) << "lost key " << k;
        ASSERT_EQ(*got, torture_value(k)) << "key " << k;
      }
    }
  }
  EXPECT_EQ(map.size(), kWriters * (kKeysPerWriter - (kKeysPerWriter + 4) / 5));

  // The run must actually have exercised the machinery it claims to.
  const obs::Snapshot s = map.snapshot();
  EXPECT_GE(s.migration.started, 1u) << "workload too small to trigger online resizes";
  EXPECT_EQ(s.migration.started,
            s.migration.completed + s.migration.emergency_expands + s.migration.active);
}

TEST(MigrationTorture, BatchedOpsRaceOnlineResize) {
  // Same discipline through the batched paths: get_batch sub-batches
  // validate one epoch over a dual view; put_batch/erase_batch help the
  // drain and may restructure mid-batch-sequence.
  ConcurrentGroupHashMap map(2, torture_options());
  constexpr u64 kBatch = 64;
  constexpr u64 kRounds = 120;

  std::atomic<u64> rounds_done{0};
  std::atomic<bool> done{false};
  std::atomic<u64> failures{0};

  std::thread writer([&] {
    std::vector<u64> keys(kBatch);
    std::vector<u64> vals(kBatch);
    for (u64 round = 0; round < kRounds; ++round) {
      for (u64 j = 0; j < kBatch; ++j) {
        keys[j] = 1 + round * kBatch + j;
        vals[j] = torture_value(keys[j]);
      }
      map.put_batch(keys, vals);
      rounds_done.store(round + 1, std::memory_order_release);
    }
  });

  std::thread reader([&] {
    Xoshiro256 rng(99);
    std::vector<u64> keys(kBatch);
    std::vector<std::optional<u64>> out(kBatch);
    while (!done.load(std::memory_order_acquire)) {
      const u64 p = rounds_done.load(std::memory_order_acquire);
      if (p == 0) continue;
      const u64 round = rng.next_below(p);
      for (u64 j = 0; j < kBatch; ++j) keys[j] = 1 + round * kBatch + j;
      out.assign(kBatch, std::nullopt);
      map.get_batch(keys, out);
      for (u64 j = 0; j < kBatch; ++j) {
        if (!out[j] || *out[j] != torture_value(keys[j])) failures.fetch_add(1);
      }
    }
  });

  writer.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(map.size(), kRounds * kBatch);
  for (u64 round = 0; round < kRounds; ++round) {
    for (u64 j = 0; j < kBatch; ++j) {
      const u64 k = 1 + round * kBatch + j;
      ASSERT_EQ(map.get(k), torture_value(k)) << k;
    }
  }
}

}  // namespace
}  // namespace gh
