#include "core/concurrent_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/inspect.hpp"

namespace gh {
namespace {

TEST(ConcurrentGroupHashMap, SingleThreadedBasics) {
  ConcurrentGroupHashMap map(4, {.initial_cells = 1024});
  EXPECT_EQ(map.shard_count(), 4u);
  map.put(1, 10);
  map.put(2, 20);
  EXPECT_EQ(*map.get(1), 10u);
  EXPECT_EQ(*map.get(2), 20u);
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.get(1).has_value());
  EXPECT_EQ(map.size(), 1u);
}

TEST(ConcurrentGroupHashMap, KeysSpreadAcrossShards) {
  ConcurrentGroupHashMap map(8, {.initial_cells = 8 * 1024});
  for (u64 k = 1; k <= 4000; ++k) map.put(k, k);
  EXPECT_EQ(map.size(), 4000u);
  for (u64 k = 1; k <= 4000; ++k) EXPECT_EQ(*map.get(k), k);
}

TEST(ConcurrentGroupHashMap, ParallelDisjointWriters) {
  ConcurrentGroupHashMap map(16, {.initial_cells = 1 << 14});
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (u64 i = 0; i < kPerThread; ++i) {
        const u64 k = static_cast<u64>(t) * kPerThread + i + 1;
        map.put(k, k * 3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), kThreads * kPerThread);
  for (u64 k = 1; k <= kThreads * kPerThread; ++k) {
    ASSERT_TRUE(map.get(k).has_value()) << k;
    EXPECT_EQ(*map.get(k), k * 3);
  }
}

TEST(ConcurrentGroupHashMap, MixedReadersAndWriters) {
  ConcurrentGroupHashMap map(16, {.initial_cells = 1 << 14});
  for (u64 k = 1; k <= 1000; ++k) map.put(k, k);
  std::atomic<bool> stop{false};
  std::atomic<u64> read_errors{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (u64 k = 1; k <= 1000; ++k) {
        const auto v = map.get(k);
        if (!v.has_value() || *v != k) read_errors.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&map, t] {
      for (u64 i = 0; i < 3000; ++i) {
        map.put(10000 + static_cast<u64>(t) * 10000 + i, i);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(map.size(), 1000u + 4 * 3000u);
}

TEST(ConcurrentGroupHashMap, ConcurrentErase) {
  ConcurrentGroupHashMap map(8, {.initial_cells = 1 << 13});
  for (u64 k = 1; k <= 4000; ++k) map.put(k, k);
  std::vector<std::thread> erasers;
  std::atomic<u64> erased{0};
  for (int t = 0; t < 4; ++t) {
    erasers.emplace_back([&, t] {
      for (u64 k = static_cast<u64>(t) + 1; k <= 4000; k += 4) {
        if (map.erase(k)) erased.fetch_add(1);
      }
    });
  }
  for (auto& e : erasers) e.join();
  EXPECT_EQ(erased.load(), 4000u);
  EXPECT_EQ(map.size(), 0u);
}

TEST(ConcurrentGroupHashMapWide, WideKeysWork) {
  ConcurrentGroupHashMapWide map(4, {.initial_cells = 1024});
  map.put(Key128{1, 2}, 3);
  EXPECT_EQ(*map.get(Key128{1, 2}), 3u);
  EXPECT_FALSE(map.get(Key128{2, 1}).has_value());
}

TEST(ConcurrentGroupHashMap, RejectsNonPowerOfTwoShards) {
  EXPECT_DEATH(ConcurrentGroupHashMap(6, {}), "power of two");
}

// Regression: the shard split used to floor-divide initial_cells, so a
// request not divisible by the shard count silently lost capacity (e.g.
// 1000 cells / 16 shards -> 62 per shard = 992 total). The ceiling divide
// must guarantee the summed capacity covers the request.
TEST(ConcurrentGroupHashMap, ShardCapacityRoundsUpNotDown) {
  for (const usize shards : {2u, 4u, 8u, 16u}) {
    for (const u64 requested : {100ull, 1000ull, 4097ull, 10000ull}) {
      ConcurrentGroupHashMap map(shards, {.initial_cells = requested});
      EXPECT_GE(map.capacity(), requested)
          << shards << " shards, " << requested << " cells requested";
    }
  }
}

TEST(ConcurrentGroupHashMap, PessimisticModeMatchesSemantics) {
  ConcurrentGroupHashMap map(4, {.initial_cells = 1024}, LockMode::kPessimistic);
  EXPECT_EQ(map.lock_mode(), LockMode::kPessimistic);
  for (u64 k = 1; k <= 500; ++k) map.put(k, k * 7);
  for (u64 k = 1; k <= 500; ++k) EXPECT_EQ(*map.get(k), k * 7);
  EXPECT_FALSE(map.get(501).has_value());
  // The optimistic machinery is bypassed entirely.
  EXPECT_EQ(map.contention().read_retries.load(), 0u);
  EXPECT_EQ(map.contention().read_fallbacks.load(), 0u);
}

TEST(ConcurrentGroupHashMap, UncontendedReadsNeverRetry) {
  ConcurrentGroupHashMap map(4, {.initial_cells = 1024});
  for (u64 k = 1; k <= 200; ++k) map.put(k, k);
  for (u64 k = 1; k <= 200; ++k) EXPECT_EQ(*map.get(k), k);
  const LockContention total = map.contention();
  EXPECT_EQ(total.read_retries.load(), 0u);
  EXPECT_EQ(total.read_fallbacks.load(), 0u);
}

TEST(ConcurrentGroupHashMap, ReadsSurviveExpansion) {
  // Tiny shards force repeated expansion while a reader hammers existing
  // keys: views must be republished and stale ones stay dereferenceable.
  ConcurrentGroupHashMap map(2, {.initial_cells = 128});
  for (u64 k = 1; k <= 64; ++k) map.put(k, k * 11);
  std::atomic<bool> stop{false};
  std::atomic<u64> read_errors{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (u64 k = 1; k <= 64; ++k) {
        const auto v = map.get(k);
        if (!v.has_value() || *v != k * 11) read_errors.fetch_add(1);
      }
    }
  });
  for (u64 k = 65; k <= 20000; ++k) map.put(k, k * 11);
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  for (u64 k = 1; k <= 20000; ++k) ASSERT_EQ(*map.get(k), k * 11) << k;
}

TEST(ConcurrentGroupHashMap, InspectShardsAggregates) {
  ConcurrentGroupHashMap map(4, {.initial_cells = 2048});
  for (u64 k = 1; k <= 1000; ++k) map.put(k, k);
  auto report = inspect_shards(map);
  ASSERT_EQ(report.shards.size(), 4u);
  EXPECT_EQ(report.total_occupied, 1000u);
  EXPECT_EQ(report.total_torn_cells, 0u);
  EXPECT_GE(report.total_capacity, 2048u);
  EXPECT_TRUE(report.clean());
  u64 summed = 0;
  for (const auto& s : report.shards) summed += s.table.scanned_occupied;
  EXPECT_EQ(summed, 1000u);
}

}  // namespace
}  // namespace gh
