// Tracing vs concurrency torture (runs under TSan via the `concurrency`
// ctest label): writer threads run with a sampled thread trace installed
// around a slice of their ops — the exact shape the service's shard
// workers produce — on a ConcurrentGroupHashMap sized so shards resize
// online mid-run. Meanwhile a poller thread concurrently
//   * takes map.snapshot() (phase attribution rolls up under load),
//   * feeds a TimeSeries ticker from those snapshots, and
//   * drains SpanCollector::global() while writers are still emitting.
// Checks: no data races (TSan), every drained span is structurally
// valid, nesting invariants hold per trace (phase children sit inside
// their op span), and the phase accumulators keep the partition
// invariant (sum of phase_ns == op_ns) at every poll.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/concurrent_map.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"

namespace gh {
namespace {

MapOptions torture_options() {
  MapOptions o;
  o.initial_cells = 256;  // tiny shards: online migrations fire mid-run
  o.flush_latency_ns = 0;
  o.latency_sample_shift = 0;
  o.online_resize = true;
  o.migrate_groups_per_op = 1;
  return o;
}

TEST(TraceTorture, SpansStayWellFormedUnderWritersAndConcurrentDrain) {
  if (!obs::kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  obs::SpanCollector& collector = obs::SpanCollector::global();
  ConcurrentGroupHashMap map(4, torture_options());

  constexpr int kWriters = 4;
  constexpr u64 kOpsPerWriter = 6000;
  std::atomic<bool> done{false};
  std::atomic<u64> traced_ops{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (u64 i = 0; i < kOpsPerWriter; ++i) {
        const u64 k = (u64(w) << 32) | (i + 1);
        // Every 8th op runs inside a sampled trace — same cadence class
        // the service uses, dense enough to keep the rings churning.
        if ((i & 7) == 0) {
          obs::set_thread_trace(collector.next_trace_id(), /*parent_span=*/0,
                                /*sampled=*/true);
          map.put(k, k * 3 + 1);
          if ((i & 63) == 0) (void)map.erase(k);
          obs::clear_thread_trace();
          traced_ops.fetch_add(1, std::memory_order_relaxed);
        } else {
          map.put(k, k * 3 + 1);
          if ((i & 15) == 0) (void)map.get(k);
        }
      }
    });
  }

  std::vector<obs::SpanRecord> drained;
  obs::TimeSeries ts(/*max_windows=*/16, /*interval_ms=*/1);
  u64 fake_ms = 0;
  u64 polls = 0;
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::Snapshot s = map.snapshot();
      // Partition invariant survives concurrent accumulation: the phase
      // buckets of every kind sum to the attributed op time. Each shard
      // snapshot truncates its ticks→ns conversion per field before the
      // roll-up adds them, so allow kPhases+1 ns of slack per shard.
      for (usize k = 0; k < obs::kOpKinds; ++k) {
        const obs::PhaseSnapshot::Row& row = s.phases.rows[k];
        u64 phase_sum = 0;
        for (const u64 p : row.phase_ns) phase_sum += p;
        EXPECT_NEAR(static_cast<double>(phase_sum), static_cast<double>(row.op_ns),
                    4.0 * (obs::kPhases + 1));
      }
      ts.tick(s, ++fake_ms);
      const std::vector<obs::SpanRecord> got = collector.drain_all();
      drained.insert(drained.end(), got.begin(), got.end());
      ++polls;
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls, 0u);
  {
    const std::vector<obs::SpanRecord> tail = collector.drain_all();
    drained.insert(drained.end(), tail.begin(), tail.end());
  }

  ASSERT_FALSE(drained.empty()) << "traced ops emitted no spans";
  // Structural validity of every record that crossed the ring.
  std::map<u64, std::vector<const obs::SpanRecord*>> by_trace;
  for (const obs::SpanRecord& r : drained) {
    EXPECT_NE(r.trace_id, 0u);
    EXPECT_GE(r.t_end, r.t_start);
    EXPECT_LT(r.kind, obs::kSpanKinds);
    EXPECT_NE(r.span_id, 0u);
    by_trace[r.trace_id].push_back(&r);
  }
  // Nesting: every phase child that survived alongside its parent op
  // span nests inside it (rings overwrite, so orphans are fine — but a
  // surviving pair must be consistent).
  u64 nested_pairs = 0;
  for (const auto& [trace_id, spans] : by_trace) {
    for (const obs::SpanRecord* child : spans) {
      if (child->kind < static_cast<u8>(obs::SpanKind::kPhaseProbe)) continue;
      for (const obs::SpanRecord* parent : spans) {
        if (parent->span_id != child->parent_id) continue;
        EXPECT_GE(child->t_start, parent->t_start);
        EXPECT_LE(child->t_end, parent->t_end);
        ++nested_pairs;
      }
    }
  }
  EXPECT_GT(nested_pairs, 0u) << "no op span kept any of its phase children";

  // The ticker consumed real snapshots under load.
  EXPECT_GT(ts.gauges().windows, 0u);
  const obs::Snapshot fin = map.snapshot();
  EXPECT_GT(fin.phases.total_op_ns(), 0u);
  EXPECT_GT(traced_ops.load(), 0u);
}

}  // namespace
}  // namespace gh
