// Deterministic seqlock torture: writers churn a single shard / stripe
// while readers hammer the same keys through the optimistic path. Values
// encode their key, so any torn or stale read is detectable; contention
// counters are asserted to stay within protocol bounds; the
// set_max_optimistic_attempts(0) hook makes the lock fallback
// deterministic for the starvation tests.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_map.hpp"
#include "core/concurrent_string_map.hpp"
#include "core/concurrent_table.hpp"
#include "util/rng.hpp"
#include "util/seqlock.hpp"

namespace gh {
namespace {

TEST(SeqLock, EpochProtocol) {
  SeqLock lock;
  const u64 e0 = lock.read_begin();
  EXPECT_TRUE(SeqLock::epoch_stable(e0));
  EXPECT_TRUE(lock.read_validate(e0));

  lock.write_lock();
  EXPECT_FALSE(SeqLock::epoch_stable(lock.read_begin()));  // odd mid-write
  EXPECT_FALSE(lock.read_validate(e0));
  lock.write_unlock();

  const u64 e1 = lock.read_begin();
  EXPECT_TRUE(SeqLock::epoch_stable(e1));
  EXPECT_EQ(e1, e0 + 2);         // one full write section
  EXPECT_FALSE(lock.read_validate(e0));  // old snapshot stays invalid
  EXPECT_TRUE(lock.read_validate(e1));
}

TEST(SeqLock, WriterWaitsAreCounted) {
  SeqLock lock;
  LockContention c;
  lock.write_lock(&c);
  EXPECT_EQ(c.writer_waits.load(), 0u);  // uncontended: no wait recorded
  std::thread contender([&] { SeqLockWriteGuard guard(lock, &c); });
  // Give the contender time to hit the held lock, then release it.
  while (c.writer_waits.load() == 0) std::this_thread::yield();
  lock.write_unlock();
  contender.join();
  EXPECT_EQ(c.writer_waits.load(), 1u);
}

/// First `n` keys of the shard/stripe that key 1 routes to, so every
/// operation in the torture loop contends on ONE seqlock.
template <class Map>
std::vector<u64> same_shard_keys(Map& map, usize n) {
  std::vector<u64> keys;
  const usize target = map.shard_index(1);
  for (u64 k = 1; keys.size() < n; ++k) {
    if (map.shard_index(k) == target) keys.push_back(k);
  }
  return keys;
}

TEST(SeqLockTorture, SingleShardReadersSeeNoTornValues) {
  ConcurrentGroupHashMap map(4, {.initial_cells = 1 << 12});
  const auto keys = same_shard_keys(map, 16);
  for (const u64 k : keys) map.put(k, k * 1000);

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kOpsPerWriter = 8000;
  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};
  std::atomic<u64> missing{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(100 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const u64 k = keys[rng.next_below(keys.size())];
        const auto v = map.get(k);
        // Writers only overwrite (no erase): the key must stay present
        // and its value must always encode it.
        if (!v.has_value()) missing.fetch_add(1);
        else if (*v / 1000 != k) torn.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(200 + w);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const u64 k = keys[rng.next_below(keys.size())];
        map.put(k, k * 1000 + rng.next_below(1000));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(missing.load(), 0u);
  for (const u64 k : keys) EXPECT_EQ(*map.get(k) / 1000, k);
  // All write traffic hit one shard; its lock saw every mutation.
  const usize target = map.shard_index(1);
  const u64 epochs = 2ull * (keys.size() + kWriters * kOpsPerWriter);
  u64 other_contention = 0;
  for (usize s = 0; s < map.shard_count(); ++s) {
    if (s == target) continue;
    other_contention += map.shard_contention(s).read_retries.load();
  }
  EXPECT_EQ(other_contention, 0u);  // no cross-shard interference
  (void)epochs;
}

TEST(SeqLockTorture, ExactFinalCountsAfterChurn) {
  ConcurrentGroupHashMap map(4, {.initial_cells = 1 << 13});
  const auto keys = same_shard_keys(map, 256);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    // Thread id owns keys[i] with i % kThreads == id: insert/erase churn,
    // ending present. Disjoint ownership makes the final state exact.
    threads.emplace_back([&, id] {
      for (int round = 0; round < 3; ++round) {
        for (usize i = id; i < keys.size(); i += kThreads) {
          map.put(keys[i], keys[i]);
          ASSERT_TRUE(map.erase(keys[i]));
        }
      }
      for (usize i = id; i < keys.size(); i += kThreads) map.put(keys[i], keys[i]);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.size(), keys.size());
  for (const u64 k : keys) EXPECT_EQ(*map.get(k), k);
}

TEST(SeqLockTorture, ReaderFallbackPreventsStarvation) {
  // Attempt budget 0: every optimistic read goes straight to the lock.
  // Correctness must not depend on validation ever succeeding.
  ConcurrentGroupHashMap map(4, {.initial_cells = 1 << 12});
  map.set_max_optimistic_attempts(0);
  const auto keys = same_shard_keys(map, 8);
  for (const u64 k : keys) map.put(k, k * 1000);

  std::atomic<bool> stop{false};
  std::atomic<u64> bad{0};
  std::atomic<u64> reads{0};
  std::thread reader([&] {
    Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const u64 k = keys[rng.next_below(keys.size())];
      const auto v = map.get(k);
      if (!v.has_value() || *v / 1000 != k) bad.fetch_add(1);
      reads.fetch_add(1);
    }
  });
  std::thread writer([&] {
    Xoshiro256 rng(8);
    for (int i = 0; i < 6000; ++i) {
      const u64 k = keys[rng.next_below(keys.size())];
      map.put(k, k * 1000 + rng.next_below(1000));
    }
  });
  writer.join();
  // The reader must observe at least one value (single-core schedulers may
  // not have run it yet) before the fallback-counter assertion can hold.
  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  const LockContention total = map.contention();
  EXPECT_GT(total.read_fallbacks.load(), 0u);   // every read fell back
  EXPECT_EQ(total.read_retries.load(), 0u);     // no attempts were made
}

TEST(SeqLockTorture, StripedTableSameGroupChurn) {
  ConcurrentGroupHashTable table({.total_cells = 1 << 12, .group_size = 64});
  // All keys below hash into SOME stripe each; hammering a small key set
  // maximizes same-stripe collisions.
  std::vector<u64> keys;
  for (u64 k = 1; keys.size() < 8; ++k) keys.push_back(k);
  for (const u64 k : keys) table.put(k, k * 1000);

  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < 4; ++id) {
    threads.emplace_back([&, id] {
      Xoshiro256 rng(id + 1);
      for (int i = 0; i < 10000; ++i) {
        const u64 k = keys[rng.next_below(keys.size())];
        if (rng.next_bool()) {
          table.put(k, k * 1000 + rng.next_below(1000));
        } else {
          const auto v = table.find(k);
          if (v && *v / 1000 != k) torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(table.count(), keys.size());
}

TEST(SeqLockTorture, StripedTableStarvationFallback) {
  ConcurrentGroupHashTable table({.total_cells = 1 << 12, .group_size = 64});
  table.set_max_optimistic_attempts(0);
  table.put(1, 1000);
  std::atomic<bool> stop{false};
  std::atomic<u64> bad{0};
  std::atomic<u64> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto v = table.find(1);
      if (!v.has_value() || *v / 1000 != 1) bad.fetch_add(1);
      reads.fetch_add(1);
    }
  });
  for (int i = 0; i < 4000; ++i) table.put(1, 1000 + static_cast<u64>(i) % 1000);
  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(table.contention().read_fallbacks.load(), 0u);
}

TEST(SeqLockTorture, StringMapReadersSeeNoTornValues) {
  ConcurrentStringMap map({.shards = 4});
  const usize target = map.shard_index("key-1");
  std::vector<std::string> keys;
  for (u64 k = 1; keys.size() < 8; ++k) {
    std::string key = "key-" + std::to_string(k);
    if (map.shard_index(key) == target) keys.push_back(std::move(key));
  }
  for (usize i = 0; i < keys.size(); ++i) map.put(keys[i], (i + 1) * 1000);

  std::atomic<bool> stop{false};
  std::atomic<u64> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(300 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const usize i = rng.next_below(keys.size());
        const auto v = map.get(keys[i]);
        if (!v.has_value() || *v / 1000 != i + 1) bad.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    Xoshiro256 rng(400);
    for (int op = 0; op < 6000; ++op) {
      const usize i = rng.next_below(keys.size());
      map.put(keys[i], (i + 1) * 1000 + rng.next_below(1000));
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
  for (usize i = 0; i < keys.size(); ++i) EXPECT_EQ(*map.get(keys[i]) / 1000, i + 1);
}

}  // namespace
}  // namespace gh
