#include "core/string_map.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_map>

#include "util/rng.hpp"

namespace gh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(StringMap, BasicPutGetErase) {
  auto map = PersistentStringMap::create_in_memory({});
  EXPECT_TRUE(map.empty());
  map.put("alpha", 1);
  map.put("beta", 2);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.get("alpha"), 1u);
  EXPECT_EQ(*map.get("beta"), 2u);
  EXPECT_FALSE(map.get("gamma").has_value());
  EXPECT_TRUE(map.erase("alpha"));
  EXPECT_FALSE(map.get("alpha").has_value());
  EXPECT_FALSE(map.erase("alpha"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(StringMap, UpdateIsInPlaceWithoutArenaGrowth) {
  auto map = PersistentStringMap::create_in_memory({});
  map.put("key", 1);
  const u64 used_before = map.stats().arena_used;
  for (u64 v = 2; v <= 100; ++v) map.put("key", v);
  EXPECT_EQ(*map.get("key"), 100u);
  EXPECT_EQ(map.stats().arena_used, used_before);  // no new records
  EXPECT_EQ(map.size(), 1u);
}

TEST(StringMap, KeysOfAllShapes) {
  auto map = PersistentStringMap::create_in_memory({});
  const std::string keys[] = {
      "",                                  // empty key
      "a",                                 // single char
      std::string(1000, 'x'),              // long key
      std::string("embedded\0null", 13),   // binary content
      "unicode-ключ-鍵",                   // multi-byte
  };
  u64 v = 1;
  for (const auto& k : keys) map.put(k, v++);
  v = 1;
  for (const auto& k : keys) {
    ASSERT_TRUE(map.get(k).has_value()) << "key size " << k.size();
    EXPECT_EQ(*map.get(k), v++);
  }
}

TEST(StringMap, SimilarKeysDoNotAlias) {
  auto map = PersistentStringMap::create_in_memory({});
  map.put("user:1", 1);
  map.put("user:10", 10);
  map.put("user:100", 100);
  map.put("User:1", 9991);
  EXPECT_EQ(*map.get("user:1"), 1u);
  EXPECT_EQ(*map.get("user:10"), 10u);
  EXPECT_EQ(*map.get("user:100"), 100u);
  EXPECT_EQ(*map.get("User:1"), 9991u);
}

TEST(StringMap, OracleChurn) {
  auto map = PersistentStringMap::create_in_memory({.initial_cells = 1 << 12});
  std::unordered_map<std::string, u64> oracle;
  Xoshiro256 rng(5);
  for (int step = 0; step < 5000; ++step) {
    const std::string key = "k" + std::to_string(rng.next_below(800));
    const double r = rng.next_double();
    if (r < 0.6) {
      const u64 v = rng.next();
      map.put(key, v);
      oracle[key] = v;
    } else if (r < 0.8) {
      const auto found = map.get(key);
      const auto it = oracle.find(key);
      ASSERT_EQ(found.has_value(), it != oracle.end());
      if (found) EXPECT_EQ(*found, it->second);
    } else {
      EXPECT_EQ(map.erase(key), oracle.erase(key) == 1);
    }
  }
  EXPECT_EQ(map.size(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*map.get(k), v);
}

TEST(StringMap, ForEachVisitsEverything) {
  auto map = PersistentStringMap::create_in_memory({});
  std::unordered_map<std::string, u64> expected;
  for (int i = 0; i < 50; ++i) {
    const std::string k = "item-" + std::to_string(i);
    map.put(k, i);
    expected[k] = i;
  }
  map.erase("item-25");
  expected.erase("item-25");
  std::unordered_map<std::string, u64> seen;
  map.for_each([&](std::string_view k, u64 v) { seen[std::string(k)] = v; });
  EXPECT_EQ(seen, expected);
}

TEST(StringMap, CompactionReclaimsGarbage) {
  auto map = PersistentStringMap::create_in_memory({.initial_cells = 1 << 10});
  // Create garbage: insert+erase cycles leave orphaned records.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) {
      map.put("tmp-" + std::to_string(round) + "-" + std::to_string(i), i);
    }
    for (int i = 0; i < 100; ++i) {
      map.erase("tmp-" + std::to_string(round) + "-" + std::to_string(i));
    }
  }
  map.put("keeper", 42);
  const StringMapStats before = map.stats();
  EXPECT_GT(before.arena_used, before.arena_live);  // garbage exists
  map.compact();
  const StringMapStats after = map.stats();
  EXPECT_EQ(after.arena_used, after.arena_live);  // all garbage gone
  EXPECT_LT(after.arena_used, before.arena_used);
  EXPECT_EQ(*map.get("keeper"), 42u);
}

TEST(StringMap, AutoGrowsBeyondInitialCapacity) {
  auto map = PersistentStringMap::create_in_memory(
      {.initial_cells = 64, .arena_bytes_per_cell = 16});
  for (int i = 0; i < 2000; ++i) {
    map.put("grow-key-" + std::to_string(i), static_cast<u64>(i));
  }
  EXPECT_EQ(map.size(), 2000u);
  EXPECT_GT(map.stats().compactions, 0u);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(map.get("grow-key-" + std::to_string(i)).has_value()) << i;
    EXPECT_EQ(*map.get("grow-key-" + std::to_string(i)), static_cast<u64>(i));
  }
}

TEST(StringMap, FilePersistenceAcrossSessions) {
  const std::string path = temp_path("gh_string_map.gh");
  std::filesystem::remove(path);
  {
    auto map = PersistentStringMap::create(path, {});
    map.put("persistent", 7);
    map.put("state", 8);
    map.close();
  }
  {
    auto map = PersistentStringMap::open(path);
    EXPECT_FALSE(map.recovered_on_open());
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(*map.get("persistent"), 7u);
    map.put("more", 9);
    map.close();
  }
  {
    auto map = PersistentStringMap::open(path);
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(*map.get("more"), 9u);
  }
  std::filesystem::remove(path);
}

TEST(StringMap, DirtyFileTriggersRecoveryOnOpen) {
  const std::string path = temp_path("gh_string_map_dirty.gh");
  const std::string snap = temp_path("gh_string_map_dirty_snap.gh");
  std::filesystem::remove(path);
  {
    auto map = PersistentStringMap::create(path, {});
    for (int i = 0; i < 100; ++i) map.put("crash-" + std::to_string(i), i);
    std::filesystem::copy_file(path, snap,
                               std::filesystem::copy_options::overwrite_existing);
    map.close();
  }
  {
    auto map = PersistentStringMap::open(snap);
    EXPECT_TRUE(map.recovered_on_open());
    EXPECT_EQ(map.size(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(*map.get("crash-" + std::to_string(i)), static_cast<u64>(i));
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove(snap);
}

TEST(StringMap, CompactionOfFileBackedMapSurvivesReopen) {
  const std::string path = temp_path("gh_string_map_compact.gh");
  std::filesystem::remove(path);
  {
    auto map = PersistentStringMap::create(path, {.initial_cells = 64});
    for (int i = 0; i < 500; ++i) map.put("file-grow-" + std::to_string(i), i);
    EXPECT_GT(map.stats().compactions, 0u);
    map.close();
  }
  {
    auto map = PersistentStringMap::open(path);
    EXPECT_EQ(map.size(), 500u);
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(*map.get("file-grow-" + std::to_string(i)), static_cast<u64>(i));
    }
  }
  std::filesystem::remove(path);
}

TEST(StringMap, RejectsGarbageFile) {
  const std::string path = temp_path("gh_string_map_junk.gh");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::string junk(16384, 'q');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  EXPECT_THROW(PersistentStringMap::open(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gh
