// Observability vs concurrency torture (runs under TSan via the
// `concurrency` ctest label): writer threads hammer a ConcurrentStringMap
// while a poller thread loops snapshot() + export_json(). Checks:
//   * no data races (TSan) and no torn values — every sampled counter is
//     plausible (bounded by the work actually submitted)
//   * counters are monotone across successive snapshots
//   * export_json always validates mid-flight
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_map.hpp"
#include "core/concurrent_string_map.hpp"
#include "obs/export.hpp"
#include "obs/snapshot.hpp"

namespace gh {
namespace {

TEST(ObsTorture, StringMapSnapshotUnderWriters) {
  ConcurrentStringMapOptions options;
  options.shards = 8;
  options.shard_options.initial_cells = 256;  // force compactions mid-run
  options.shard_options.latency_sample_shift = 0;
  ConcurrentStringMap map(options);

  constexpr int kWriters = 4;
  constexpr u64 kOpsPerWriter = 4000;
  std::atomic<bool> done{false};
  std::atomic<u64> submitted{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (u64 i = 0; i < kOpsPerWriter; ++i) {
        const std::string key = "w" + std::to_string(w) + "-" + std::to_string(i);
        map.put(key, i);
        submitted.fetch_add(1, std::memory_order_relaxed);
        if ((i & 7) == 0) (void)map.get(key);
        if ((i & 63) == 0) (void)map.erase(key);
      }
    });
  }

  u64 polls = 0;
  obs::Snapshot prev;
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      obs::Snapshot s = map.snapshot();
      // Monotone: lifetime counters never go backwards between polls.
      EXPECT_GE(s.table.inserts, prev.table.inserts);
      EXPECT_GE(s.persist.lines_flushed, prev.persist.lines_flushed);
      EXPECT_GE(s.lifecycle.compactions, prev.lifecycle.compactions);
      EXPECT_GE(s.latency.insert.count, prev.latency.insert.count);
      // Plausible: never more ops reported than submitted so far PLUS the
      // rebuild reinserts of compactions (bounded by compactions * size).
      EXPECT_LE(s.size, submitted.load(std::memory_order_relaxed));
      EXPECT_EQ(s.per_shard.size(), 8u);
      std::string error;
      EXPECT_TRUE(obs::validate_json(obs::export_json(s), &error)) << error;
      prev = std::move(s);
      ++polls;
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls, 0u);

  const obs::Snapshot fin = map.snapshot();
  // Everything not erased is present; erased ops are 1 in 64 per writer.
  EXPECT_GT(fin.size, kWriters * kOpsPerWriter * 9 / 10);
  if (obs::kEnabled) {
    EXPECT_GE(fin.latency.insert.count, kWriters * kOpsPerWriter);
  }
}

TEST(ObsTorture, GroupMapSnapshotDuringExpansion) {
  // Tiny shards so writers drive expansions while the poller samples:
  // counters must survive the table swap (snapshot taken under the shard
  // seqlock read side).
  ConcurrentGroupHashMap map(4, {.initial_cells = 256, .latency_sample_shift = 0});
  constexpr int kWriters = 4;
  constexpr u64 kOpsPerWriter = 8000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (u64 i = 0; i < kOpsPerWriter; ++i) {
        map.put((u64(w) << 32) | (i + 1), i);
      }
    });
  }

  obs::Snapshot prev;
  u64 max_expansions = 0;
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::Snapshot s = map.snapshot();
      EXPECT_GE(s.table.inserts, prev.table.inserts);
      EXPECT_GE(s.lifecycle.expansions, prev.lifecycle.expansions);
      max_expansions = s.lifecycle.expansions;
      prev = s;
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  poller.join();

  const obs::Snapshot fin = map.snapshot();
  EXPECT_EQ(fin.size, u64{kWriters} * kOpsPerWriter);
  EXPECT_GT(fin.lifecycle.expansions, 0u) << "test never exercised expansion";
  EXPECT_GE(fin.lifecycle.expansions, max_expansions);
  if (obs::kEnabled) {
    // Inserts are counted at op granularity even across expansions.
    EXPECT_GE(fin.latency.insert.count, u64{kWriters} * kOpsPerWriter);
  }
}

}  // namespace
}  // namespace gh
