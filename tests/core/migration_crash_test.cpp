// Crash-at-every-step fuzz for the online-resize migration.
//
// The migration's durable steps live in two registries:
//
//   * named crash points (src/nvm/crash_point.hpp) — the PM-store steps
//     between filesystem boundaries: target formatted, cursor armed,
//     group copied, group erased, cursor advanced, finalize hand-off,
//     retire, emergency merge;
//   * FaultFs steps (src/nvm/fault_fs.hpp) — the filesystem boundaries
//     themselves: target create/msync/dir-fsync, cursor-page msync,
//     finalize rename.
//
// The sweep is the publish_crash_test recipe applied to both: one record
// run traces every step a seeded mixed workload performs, then one trial
// per step boundary replays the identical workload, crashes there
// (SimulatedCrash → abandon(), exactly a power failure), reopens, and
// compares against a sequential oracle. Acceptance is zero lost
// committed ops: every op whose call returned before the crash must be
// visible after reopen; the single in-flight op may have landed or not
// (atomically — never torn). Reopening mid-migration must also leave
// the fingerprint tags and per-group CRCs of BOTH tables coherent, and
// the resumed drain must finish to a single table with the same
// contents.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/group_hash_map.hpp"
#include "core/map_format.hpp"
#include "nvm/crash_point.hpp"
#include "nvm/fault_fs.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

MapOptions migration_options() {
  MapOptions o;
  o.initial_cells = 64;  // several migrations within a few hundred keys
  o.group_size = 8;
  o.flush_latency_ns = 0;
  o.online_resize = true;
  o.migrate_groups_per_op = 1;
  return o;
}

constexpr u64 kOpsPerSeed = 400;
constexpr u64 kSeeds = 8;

enum class WorkOp { kPut, kErase, kIncrement };

struct WorkStep {
  WorkOp op;
  u64 key;
  u64 value;
};

/// The seeded mixed workload, shared by record and replay runs: mostly
/// inserts (so the map keeps outgrowing itself), a sprinkle of erases
/// and increments against already-written keys.
std::vector<WorkStep> make_workload(u64 seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  std::vector<WorkStep> steps;
  steps.reserve(kOpsPerSeed);
  u64 next_key = 1;
  for (u64 i = 0; i < kOpsPerSeed; ++i) {
    const u64 roll = rng.next_below(10);
    if (roll < 7 || next_key < 4) {
      steps.push_back({WorkOp::kPut, next_key, rng.next() | 1});
      ++next_key;
    } else if (roll < 9) {
      steps.push_back({WorkOp::kIncrement, 1 + rng.next_below(next_key - 1), 3});
    } else {
      steps.push_back({WorkOp::kErase, 1 + rng.next_below(next_key - 1), 0});
    }
  }
  return steps;
}

void apply_to_oracle(std::map<u64, u64>& oracle, const WorkStep& s) {
  switch (s.op) {
    case WorkOp::kPut: oracle[s.key] = s.value; break;
    case WorkOp::kErase: oracle.erase(s.key); break;
    case WorkOp::kIncrement: oracle[s.key] += s.value; break;
  }
}

struct RunResult {
  std::map<u64, u64> oracle;        ///< committed ops only
  std::optional<WorkStep> in_flight;  ///< the op the crash interrupted
  bool crashed = false;
};

/// Replays the workload for `seed` against a fresh file map at `path`.
/// Returns the committed-op oracle; when a crash fires, also which op
/// was in flight.
RunResult run_workload(const std::string& path, u64 seed) {
  RunResult r;
  std::optional<GroupHashMap> map;
  try {
    map.emplace(GroupHashMap::create(path, migration_options()));
  } catch (const nvm::SimulatedCrash&) {
    // Crash during create(): nothing was committed, nothing to verify.
    r.crashed = true;
    return r;
  }
  for (const WorkStep& s : make_workload(seed)) {
    try {
      switch (s.op) {
        case WorkOp::kPut: map->put(s.key, s.value); break;
        case WorkOp::kErase: map->erase(s.key); break;
        case WorkOp::kIncrement: map->increment(s.key, s.value); break;
      }
    } catch (const nvm::SimulatedCrash&) {
      r.in_flight = s;
      r.crashed = true;
      map->abandon();
      return r;
    }
    apply_to_oracle(r.oracle, s);
  }
  map->abandon();  // keep the dirty image: reopen must run recovery
  return r;
}

/// The acceptance check: the reopened map equals the oracle, except the
/// in-flight op which may have (atomically) landed. Before the drain
/// finishes, a group interrupted between copy and erase may hold its
/// keys in BOTH tables — a benign duplicate (same value, masked by
/// new-first reads) — so the exact-cardinality check only applies once
/// `drained` collapses the image back to one table.
void verify_against_oracle(GroupHashMap& map, const RunResult& r, bool drained) {
  std::map<u64, u64> expected = r.oracle;
  std::map<u64, u64> with_in_flight = r.oracle;
  if (r.in_flight) apply_to_oracle(with_in_flight, *r.in_flight);
  const u64 in_flight_key = r.in_flight ? r.in_flight->key : 0;

  for (const auto& [k, v] : expected) {
    if (r.in_flight && k == in_flight_key) continue;
    const auto got = map.get(k);
    ASSERT_TRUE(got.has_value()) << "lost committed key " << k;
    EXPECT_EQ(*got, v) << "committed key " << k;
  }
  if (r.in_flight) {
    // Either pre-op or post-op state for the interrupted key — only.
    const auto got = map.get(in_flight_key);
    const auto pre = expected.count(in_flight_key)
                         ? std::optional<u64>(expected[in_flight_key])
                         : std::nullopt;
    const auto post = with_in_flight.count(in_flight_key)
                          ? std::optional<u64>(with_in_flight[in_flight_key])
                          : std::nullopt;
    EXPECT_TRUE(got == pre || got == post)
        << "in-flight key " << in_flight_key << " is torn: "
        << (got ? std::to_string(*got) : "absent");
  }
  // No resurrected or invented keys either.
  map.for_each([&](u64 k, u64 v) {
    if (r.in_flight && k == in_flight_key) return;
    auto it = expected.find(k);
    if (it == expected.end()) {
      ADD_FAILURE() << "unexpected key " << k << " after reopen";
    } else {
      EXPECT_EQ(v, it->second) << "key " << k;
    }
  });
  if (drained) {
    const u64 n = map.size();
    EXPECT_TRUE(n == expected.size() || n == with_in_flight.size())
        << "size " << n << " matches neither oracle (" << expected.size() << ") nor "
        << "oracle+in-flight (" << with_in_flight.size() << ")";
  }
}

void run_trial(const std::string& path, const RunResult& r) {
  auto map = GroupHashMap::open(path, migration_options());
  // Mid-migration integrity: tags and CRCs of both halves must verify
  // before any further traffic.
  EXPECT_TRUE(map.debug_verify_tags());
  EXPECT_TRUE(map.debug_verify_group_checksums());
  verify_against_oracle(map, r, /*drained=*/false);
  // The resumed drain must finish and still hold the oracle.
  while (map.migration_active()) {
    ASSERT_GT(map.migrate_step(~0ull), 0u) << "resumed migration must progress";
  }
  EXPECT_FALSE(fs::exists(path + ".migrate"));
  verify_against_oracle(map, r, /*drained=*/true);
  map.close();
}

void remove_all(const std::string& path) {
  fs::remove(path);
  fs::remove(path + ".migrate");
  fs::remove(path + ".expand");
  fs::remove(path + ".flight");
}

TEST(MigrationCrash, CrashAtEveryCrashPointRecoversToOracle) {
  const std::string path = temp_path("gh_migration_crash_points.gh");
  for (u64 seed = 0; seed < kSeeds; ++seed) {
    remove_all(path);
    // Record run: count the PM-store crash points this seed hits.
    nvm::TracePointPolicy tracer;
    {
      const nvm::ScopedCrashPoints installed(&tracer);
      const RunResult full = run_workload(path, seed);
      ASSERT_FALSE(full.crashed);
    }
    ASSERT_GT(tracer.trace.size(), 0u)
        << "seed " << seed << " must exercise the migration machinery";
    bool saw_finalize = false;
    for (const std::string& p : tracer.trace) saw_finalize |= p == "migrate.retired";
    ASSERT_TRUE(saw_finalize) << "seed " << seed << " must complete a migration";

    for (usize k = 0; k < tracer.trace.size(); ++k) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ", crash at point " +
                   std::to_string(k) + " (" + tracer.trace[k] + ")");
      remove_all(path);
      nvm::CrashAtPointPolicy policy;
      policy.crash_at = k;
      RunResult r;
      {
        const nvm::ScopedCrashPoints installed(&policy);
        r = run_workload(path, seed);
      }
      ASSERT_TRUE(r.crashed) << "replay must crash at the recorded point";
      run_trial(path, r);
    }
  }
  remove_all(path);
}

TEST(MigrationCrash, CrashAtEveryFsStepRecoversToOracle) {
  // The filesystem half of the sweep: target publish, every cursor-page
  // msync, the finalize rename + dir fsync. One seed is enough — the fs
  // schedule is the same protocol at every occurrence; the per-seed
  // variety above covers workload shapes.
  const std::string path = temp_path("gh_migration_crash_fs.gh");
  const u64 seed = 1;
  remove_all(path);
  nvm::CrashScheduleFs recorder;
  {
    const nvm::ScopedFsPolicy installed(&recorder);
    const RunResult full = run_workload(path, seed);
    ASSERT_FALSE(full.crashed);
  }
  ASSERT_GT(recorder.trace.size(), 0u);
  bool saw_rename = false;
  for (const auto& step : recorder.trace) {
    saw_rename |= step.op == nvm::FsOp::kRename;
  }
  ASSERT_TRUE(saw_rename) << "the workload must reach a finalize rename";

  // Step 0 is the create() of the map file itself — nothing to reopen —
  // so the sweep starts at 1.
  for (usize k = 1; k < recorder.trace.size(); ++k) {
    SCOPED_TRACE("crash before fs step " + std::to_string(k) + " (" +
                 nvm::to_string(recorder.trace[k].op) + " " + recorder.trace[k].path +
                 ")");
    remove_all(path);
    nvm::CrashScheduleFs policy;
    policy.crash_at = k;
    RunResult r;
    {
      const nvm::ScopedFsPolicy installed(&policy);
      r = run_workload(path, seed);
    }
    ASSERT_TRUE(r.crashed) << "replay must crash at the recorded step";
    if (!r.in_flight && r.oracle.empty()) continue;  // died inside create()
    run_trial(path, r);
  }
  remove_all(path);
}

TEST(MigrationCrash, TornMigrationTargetIsRejectedNotTrusted) {
  // A crash right before the target's first msync can lose its
  // superblock writes entirely: overwrite the .migrate file with garbage
  // and the armed-cursor open must refuse to resume into it rather than
  // serve junk.
  const std::string path = temp_path("gh_migration_torn_target.gh");
  remove_all(path);
  {
    auto map = GroupHashMap::create(path, migration_options());
    u64 i = 1;
    while (!map.migration_active() && i < 10'000) map.put(i, i), ++i;
    ASSERT_TRUE(map.migration_active());
    map.close();
  }
  {
    std::ofstream out(path + ".migrate", std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 4096; ++i) out.put(static_cast<char>(0xCB));
  }
  EXPECT_THROW((void)GroupHashMap::open(path, migration_options()), std::runtime_error);
  remove_all(path);
}

TEST(MigrationCrash, MissingMigrationTargetIsFatalNotSilent) {
  // An armed cursor whose target file vanished is unrecoverable by
  // design (the target held drained keys): open must throw, not quietly
  // serve the partial old table.
  const std::string path = temp_path("gh_migration_missing_target.gh");
  remove_all(path);
  {
    auto map = GroupHashMap::create(path, migration_options());
    u64 i = 1;
    while (!map.migration_active() && i < 10'000) map.put(i, i), ++i;
    ASSERT_TRUE(map.migration_active());
    ASSERT_GT(map.migrate_step(1), 0u);  // some keys live only in the target
    map.close();
  }
  fs::remove(path + ".migrate");
  EXPECT_THROW((void)GroupHashMap::open(path, migration_options()), std::runtime_error);
  remove_all(path);
}

TEST(MigrationCrash, CorruptCursorWordIsRejected) {
  // The cursor word carries its own inverted CRC: a word that fails it
  // is media corruption (8-byte stores never tear), and open must say so
  // instead of resuming from a forged cursor.
  const std::string path = temp_path("gh_migration_bad_cursor.gh");
  remove_all(path);
  {
    auto map = GroupHashMap::create(path, migration_options());
    map.put(1, 1);
    map.close();
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const u64 forged = 0x1234'5678'9abc'def0ull;  // active bit set, bad CRC
    f.seekp(offsetof(map_format::Superblock, migration));
    f.write(reinterpret_cast<const char*>(&forged), sizeof(forged));
  }
  EXPECT_THROW((void)GroupHashMap::open(path, migration_options()), std::runtime_error);
  remove_all(path);
}

}  // namespace
}  // namespace gh
