// Media-fault robustness suite: every injected fault class must end in
// one of exactly three outcomes — correct data, a typed error, or a
// quarantined-and-reported loss. A lookup that silently returns a wrong
// value is a test failure, full stop.
//
// Fault classes covered: at-rest bit rot (single and multi-bit), torn
// multi-word writes, poisoned cachelines (typed MediaError), superblock
// corruption, and resource exhaustion (ENOSPC-style create failures
// during expansion, which must degrade — not kill — the map).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/errors.hpp"
#include "core/group_hash_map.hpp"
#include "core/inspect.hpp"
#include "core/map_format.hpp"
#include "hash/any_table.hpp"
#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "hash/hash_functions.hpp"
#include "nvm/corrupting_pm.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/fault_fs.hpp"
#include "nvm/media_error.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

using hash::Cell16;
using hash::LostCell;
using hash::ScrubMode;
using nvm::CorruptingPM;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".expand");
  }
  ~TempFile() {
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".expand");
  }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Table level: GroupHashTable on CorruptingPM.
// ---------------------------------------------------------------------------

struct CorruptTable {
  using Table = hash::GroupHashTable<Cell16, CorruptingPM>;

  explicit CorruptTable(u64 level_cells, u32 group_size, u64 seed = hash::kDefaultSeed1)
      : params{.level_cells = level_cells,
               .group_size = group_size,
               .seed = seed,
               .group_crc = true},
        buf(Table::required_bytes(params)),
        pm({buf.data(), buf.size()}),
        table(pm, {buf.data(), buf.size()}, params, /*format=*/true) {}

  /// (level, group) that `key` may legally live in.
  [[nodiscard]] std::pair<u64, u64> home_of(u64 key) const {
    const hash::SeededHash h(params.seed);
    const u64 k = h(key) & (params.level_cells - 1);
    return {k, k / params.group_size};
  }

  [[nodiscard]] usize cell_offset(u64 global_index) const {
    return sizeof(Table::Header) + global_index * sizeof(Cell16);
  }

  Table::Params params;
  std::vector<std::byte> buf;
  CorruptingPM pm;
  Table table;
};

TEST(CorruptionTable, BitRotIsNeverServedSilently) {
  // Sweep several injection seeds; each round is a fresh table with fresh
  // random flips inside the cell arrays.
  for (u64 round = 0; round < 10; ++round) {
    CorruptTable t(1024, 64);
    std::unordered_map<u64, u64> ref;
    Xoshiro256 keyrng(1000 + round);
    while (ref.size() < 300) {
      const u64 k = keyrng.next_below(Cell16::kMaxKey - 1) + 1;
      if (ref.contains(k)) continue;
      ASSERT_TRUE(t.table.insert(k, k * 13));
      ref[k] = k * 13;
    }

    // Flip 8 random bits anywhere in the two cell arrays (ground truth:
    // the set of (level, group) pairs hit).
    Xoshiro256 flips(77 * round + 5);
    std::set<std::pair<u32, u64>> hit_groups;
    for (int i = 0; i < 8; ++i) {
      const u64 gi = flips.next_below(2 * 1024);
      t.pm.flip_bit(t.cell_offset(gi) + flips.next_below(sizeof(Cell16)),
                    static_cast<unsigned>(flips.next_below(8)));
      hit_groups.insert({gi < 1024 ? 0u : 1u, (gi % 1024) / 64});
    }

    std::vector<LostCell> losses;
    const auto report = t.table.scrub_groups(
        0, t.table.num_groups(), [&](const LostCell& c) { losses.push_back(c); });

    // Quarantine only where we actually injected (flips can cancel, so
    // subset — never a false positive elsewhere).
    for (u64 g = 0; g < t.table.num_groups(); ++g) {
      for (u32 level = 0; level < 2; ++level) {
        if (t.table.group_quarantined(level, g)) {
          EXPECT_TRUE(hit_groups.contains({level, g}))
              << "round " << round << ": false quarantine of level " << level
              << " group " << g;
        }
      }
    }
    EXPECT_EQ(losses.size(), report.cells_lost);
    EXPECT_GE(report.crc_mismatches, 1u) << "round " << round;

    // The contract: every lookup is correct or an accounted-for loss.
    u64 still_present = 0;
    for (const auto& [k, v] : ref) {
      const auto got = t.table.find(k);
      if (got.has_value()) {
        EXPECT_EQ(*got, v) << "round " << round << ": silent wrong value for key " << k;
        still_present++;
      } else {
        const auto [cell, group] = t.home_of(k);
        EXPECT_TRUE(t.table.group_quarantined(0, group) ||
                    t.table.group_quarantined(1, group))
            << "round " << round << ": key " << k << " vanished without quarantine";
      }
    }
    // Count stays consistent with what a full scan sees (bit rot leaves
    // every cell readable, so the drop accounting is exact).
    u64 scanned = 0;
    t.table.for_each([&](u64, u64) { scanned++; });
    EXPECT_EQ(t.table.count(), scanned);
    EXPECT_EQ(scanned, still_present);

    // Scrub re-sealed every failed group: a second pass is clean.
    const auto again = t.table.scrub_groups(0, t.table.num_groups(), [](const LostCell&) {});
    EXPECT_EQ(again.crc_mismatches, 0u);
    EXPECT_EQ(again.cells_lost, 0u);
  }
}

TEST(CorruptionTable, TornMultiWordWriteIsCaughtByScrub) {
  CorruptTable t(256, 16);
  for (u64 k = 1; k <= 40; ++k) ASSERT_TRUE(t.table.insert(k, k + 100));

  // Forge a torn insert below the table's protocol: a 16-byte cell image
  // written with a non-atomic copy that tears after the first word. The
  // commit word lands, the value does not — the textbook ordering bug the
  // per-word publish protocol exists to prevent.
  u64 victim = 50000;
  auto [cell_index, group] = t.home_of(victim);
  while (t.table.level1_cell(cell_index).occupied()) {
    ++victim;
    std::tie(cell_index, group) = t.home_of(victim);
  }
  auto* cell = const_cast<Cell16*>(&t.table.level1_cell(cell_index));
  const u64 image[2] = {Cell16::kOccupiedBit | victim, 777};
  t.pm.arm_tear(1);
  t.pm.copy(cell, image, sizeof(image));
  ASSERT_EQ(t.pm.tears_injected(), 1u);

  // In-process, the DRAM fingerprint filter happens to hide the forged
  // cell (it was written beneath the table's API, so its tag still reads
  // empty) — but tags are rebuilt from the cells on open, so a reopened
  // image DOES lie (value 0, not 777). That reopened view is exactly why
  // the checksum pass must run before the image is trusted.
  {
    auto reopened = CorruptTable::Table::attach(t.pm, {t.buf.data(), t.buf.size()});
    const auto lie = reopened.find(victim);
    ASSERT_TRUE(lie.has_value());
    ASSERT_EQ(*lie, 0u);
  }

  std::vector<LostCell> losses;
  const auto report = t.table.scrub_groups(
      0, t.table.num_groups(), [&](const LostCell& c) { losses.push_back(c); });
  EXPECT_GE(report.crc_mismatches, 1u);
  EXPECT_TRUE(t.table.group_quarantined(0, group));
  // The forged key was reported on its way out, and the lie is gone.
  bool reported = false;
  for (const auto& c : losses) reported |= c.key.lo == victim;
  EXPECT_TRUE(reported);
  EXPECT_FALSE(t.table.find(victim).has_value());
}

TEST(CorruptionTable, PoisonedLineIsTypedThenContained) {
  CorruptTable t(1024, 64);
  std::vector<u64> keys;
  for (u64 k = 1; k <= 200; ++k) {
    ASSERT_TRUE(t.table.insert(k, k * 3));
    keys.push_back(k);
  }
  // Poison the line under some occupied level-1 cell.
  u64 victim_cell = ~u64{0};
  for (u64 i = 0; i < 1024; ++i) {
    if (t.table.level1_cell(i).occupied()) {
      victim_cell = i;
      break;
    }
  }
  ASSERT_NE(victim_cell, ~u64{0});
  const u64 victim_key = t.table.level1_cell(victim_cell).key();
  const u64 victim_group = victim_cell / 64;
  t.pm.poison_line(t.cell_offset(victim_cell));

  // A direct probe faults typed — never a silent wrong answer.
  EXPECT_THROW((void)t.table.find(victim_key), nvm::MediaError);

  // Scrub contains it: the fault is counted, the group quarantined, the
  // unreadable cells reported, the line healed by the scrub stores.
  std::vector<LostCell> losses;
  const auto report = t.table.scrub_groups(
      0, t.table.num_groups(), [&](const LostCell& c) { losses.push_back(c); });
  EXPECT_GE(report.media_errors, 1u);
  EXPECT_TRUE(t.table.group_quarantined(0, victim_group));
  bool unreadable_reported = false;
  for (const auto& c : losses) unreadable_reported |= !c.readable;
  EXPECT_TRUE(unreadable_reported);
  EXPECT_EQ(t.pm.poisoned_line_count(), 0u) << "scrub stores must heal the line";

  // Post-containment: no throws anywhere, answers correct-or-quarantined.
  EXPECT_FALSE(t.table.find(victim_key).has_value());
  for (const u64 k : keys) {
    std::optional<u64> got;
    EXPECT_NO_THROW(got = t.table.find(k));
    if (got.has_value()) {
      EXPECT_EQ(*got, k * 3);
    }
  }
  // Unreadable cells make `count` drift by design; recovery recomputes.
  const auto rec = t.table.recover();
  u64 scanned = 0;
  t.table.for_each([&](u64, u64) { scanned++; });
  EXPECT_EQ(t.table.count(), scanned);
  EXPECT_EQ(rec.recovered_count, scanned);
}

TEST(CorruptionTable, RecoveryHealsPoisonAndRebuildsChecksums) {
  CorruptTable t(256, 16);
  for (u64 k = 1; k <= 60; ++k) ASSERT_TRUE(t.table.insert(k, k));
  t.pm.poison_line(t.cell_offset(0));
  t.pm.flip_bit(t.cell_offset(300), 2);  // plus some bit rot elsewhere

  const auto report = t.table.recover();
  EXPECT_GE(report.media_errors, 1u);
  EXPECT_EQ(t.pm.poisoned_line_count(), 0u);
  // Recovery rebuilds every checksum over what the media now holds.
  for (u64 g = 0; g < t.table.num_groups(); ++g) {
    EXPECT_TRUE(t.table.verify_group_checksum(0, g)) << g;
    EXPECT_TRUE(t.table.verify_group_checksum(1, g)) << g;
  }
}

TEST(CorruptionTable, SalvageModeKeepsConsistentCellsAndReportsThem) {
  CorruptTable t(64, 8);
  for (u64 k = 1; k <= 30; ++k) ASSERT_TRUE(t.table.insert(k, k * 9));

  // Find a level-1 group holding both an occupied and a free cell, and
  // rot a bit in the FREE cell — the occupied neighbours are then
  // salvageable (their keys still hash home).
  u64 occupied_cell = ~u64{0}, free_cell = ~u64{0};
  for (u64 g = 0; g < t.table.num_groups() && occupied_cell == ~u64{0}; ++g) {
    u64 occ = ~u64{0}, fre = ~u64{0};
    for (u64 i = g * 8; i < (g + 1) * 8; ++i) {
      (t.table.level1_cell(i).occupied() ? occ : fre) = i;
    }
    if (occ != ~u64{0} && fre != ~u64{0}) {
      occupied_cell = occ;
      free_cell = fre;
    }
  }
  ASSERT_NE(occupied_cell, ~u64{0});
  const u64 group = occupied_cell / 8;
  const u64 kept_key = t.table.level1_cell(occupied_cell).key();
  t.pm.flip_bit(t.cell_offset(free_cell) + 8, 0);  // dirty a free cell's value word

  std::vector<LostCell> losses;
  const auto report = t.table.scrub_groups(
      0, t.table.num_groups(), [&](const LostCell& c) { losses.push_back(c); },
      ScrubMode::kSalvage);
  EXPECT_GE(report.crc_mismatches, 1u);
  EXPECT_TRUE(t.table.group_quarantined(0, group));
  EXPECT_EQ(report.cells_lost, 0u) << "all occupied cells were location-consistent";
  ASSERT_FALSE(losses.empty());
  for (const auto& c : losses) {
    EXPECT_TRUE(c.salvaged);
    EXPECT_TRUE(c.location_consistent);
  }
  // Salvaged cells keep serving — with the value they had.
  EXPECT_EQ(t.table.find(kept_key).value(), kept_key * 9);
  // And the re-sealed checksum covers the retained contents.
  EXPECT_TRUE(t.table.verify_group_checksum(0, group));
}

TEST(CorruptionTable, InspectionSurfacesIntegrityCounters) {
  CorruptTable t(256, 16);
  for (u64 k = 1; k <= 50; ++k) ASSERT_TRUE(t.table.insert(k, k));
  t.pm.flip_bit(t.cell_offset(0), 5);
  const auto report =
      t.table.scrub_groups(0, t.table.num_groups(), [](const LostCell&) {});
  ASSERT_GE(report.crc_mismatches, 1u);

  const TableInspection insp = inspect(t.table);
  EXPECT_TRUE(insp.checksums_enabled);
  EXPECT_EQ(insp.checksum_mismatches, 0u);  // scrub re-sealed them
  EXPECT_GE(insp.quarantined_groups, 1u);
  EXPECT_EQ(insp.crc_mismatch_events, report.crc_mismatches);
  EXPECT_EQ(insp.cells_lost, report.cells_lost);
  EXPECT_GE(insp.groups_scrubbed, 2 * t.table.num_groups());
  EXPECT_TRUE(insp.count_consistent());
}

// ---------------------------------------------------------------------------
// AnyTable: scrub through the type-erased interface.
// ---------------------------------------------------------------------------

TEST(CorruptionAnyTable, GroupSchemeScrubsLinearReturnsEmpty) {
  nvm::DirectPM pm{nvm::PersistConfig{}};
  for (const auto scheme : {hash::Scheme::kGroup, hash::Scheme::kLinear}) {
    hash::TableConfig cfg;
    cfg.scheme = scheme;
    cfg.total_cells_log2 = 10;
    cfg.group_size = 64;
    cfg.group_crc = true;
    std::vector<std::byte> mem(hash::table_required_bytes(cfg));
    auto table = hash::make_table(pm, {mem.data(), mem.size()}, cfg, /*format=*/true);
    for (u64 k = 1; k <= 100; ++k) ASSERT_TRUE(table->insert(Key128{k, 0}, k));
    const auto report = table->scrub();
    if (scheme == hash::Scheme::kGroup) {
      EXPECT_GT(report.groups_checked, 0u);
      EXPECT_TRUE(report.clean());
    } else {
      EXPECT_EQ(report.groups_checked, 0u);  // no checksummed groups to scrub
    }
  }
}

// ---------------------------------------------------------------------------
// Map level: open-time verification, superblock integrity, scrub cursor.
// ---------------------------------------------------------------------------

TEST(CorruptionMap, CleanReopenVerifiesWithoutFalsePositives) {
  TempFile file("gh_corrupt_clean.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 1024});
    for (u64 k = 1; k <= 200; ++k) map.put(k, k);
    map.close();
  }
  auto map = GroupHashMap::open(file.path);
  EXPECT_FALSE(map.recovered_on_open());
  EXPECT_FALSE(map.corruption_detected_on_open());
  EXPECT_TRUE(map.open_scrub_report().clean());
  EXPECT_GT(map.open_scrub_report().groups_checked, 0u);
  for (u64 k = 1; k <= 200; ++k) EXPECT_EQ(*map.get(k), k);
}

TEST(CorruptionMap, AtRestBitRotDetectedOnCleanOpen) {
  TempFile file("gh_corrupt_rot.gh");
  std::unordered_map<u64, u64> ref;
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 1024});
    for (u64 k = 1; k <= 200; ++k) {
      map.put(k, k * 21);
      ref[k] = k * 21;
    }
    map.close();
  }
  // Flip one value bit of the first occupied cell, straight in the file.
  std::string bytes = read_file(file.path);
  const usize cells_at = map_format::kTableOffset + 64;
  u64 corrupted_key = 0;
  for (usize off = cells_at; off + 16 <= bytes.size(); off += 16) {
    u64 word0;
    std::memcpy(&word0, bytes.data() + off, sizeof(word0));
    if (word0 & Cell16::kOccupiedBit) {
      bytes[off + 8] = static_cast<char>(bytes[off + 8] ^ 1);
      corrupted_key = word0 & ~Cell16::kOccupiedBit;
      break;
    }
  }
  ASSERT_NE(corrupted_key, 0u);
  write_file(file.path, bytes);

  std::vector<LostCell> losses;
  MapOptions opts;
  opts.on_lost_cell = [&](const LostCell& c) { losses.push_back(c); };
  auto map = GroupHashMap::open(file.path, opts);
  EXPECT_FALSE(map.recovered_on_open());
  EXPECT_TRUE(map.corruption_detected_on_open());
  EXPECT_GE(map.open_scrub_report().crc_mismatches, 1u);
  EXPECT_GE(map.open_scrub_report().groups_quarantined, 1u);
  ASSERT_FALSE(losses.empty());

  std::unordered_set<u64> lost_keys;
  for (const auto& c : losses) lost_keys.insert(c.key.lo);
  EXPECT_TRUE(lost_keys.contains(corrupted_key));
  EXPECT_FALSE(map.get(corrupted_key).has_value())
      << "corrupted value must not be served";
  for (const auto& [k, v] : ref) {
    const auto got = map.get(k);
    if (got.has_value()) {
      EXPECT_EQ(*got, v) << "silent wrong value for key " << k;
    } else {
      EXPECT_TRUE(lost_keys.contains(k)) << "key " << k << " vanished unreported";
    }
  }
}

TEST(CorruptionMap, SuperblockCorruptionFailsOpenWithTypedError) {
  TempFile file("gh_corrupt_sb.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 256});
    map.put(1, 1);
    map.close();
  }
  std::string bytes = read_file(file.path);
  // Offset 40 = Superblock::table_bytes — forge the geometry.
  bytes[40] = static_cast<char>(bytes[40] ^ 0x40);
  write_file(file.path, bytes);

  EXPECT_FALSE(read_map_file_info(file.path).superblock_crc_ok);
  try {
    auto map = GroupHashMap::open(file.path);
    FAIL() << "open() accepted a forged superblock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(CorruptionMap, DirtyOpenRebuildsChecksumsViaRecovery) {
  TempFile file("gh_corrupt_dirty.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 1024});
    for (u64 k = 1; k <= 100; ++k) map.put(k, k + 4);
    // Keep a dirty snapshot, as a crash would have.
    std::filesystem::copy_file(file.path, file.path + ".crashed",
                               std::filesystem::copy_options::overwrite_existing);
    map.close();
  }
  auto map = GroupHashMap::open(file.path + ".crashed");
  EXPECT_TRUE(map.recovered_on_open());
  const TableInspection insp = inspect(map.raw_table());
  EXPECT_TRUE(insp.checksums_enabled);
  EXPECT_EQ(insp.checksum_mismatches, 0u) << "recovery must rebuild, not inherit";
  for (u64 k = 1; k <= 100; ++k) EXPECT_EQ(*map.get(k), k + 4);
  std::filesystem::remove(file.path + ".crashed");
}

TEST(CorruptionMap, IncrementalScrubCursorCoversEverythingAndWraps) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1024, .group_size = 32});
  for (u64 k = 1; k <= 100; ++k) map.put(k, k);
  const u64 ngroups = map.raw_table().num_groups();
  ASSERT_GT(ngroups, 3u);
  // Ticks of 3 groups each: after ceil(n/3) calls every group was seen at
  // least once (each tick checks both levels of its window; the last tick
  // wraps past the end, re-checking early groups).
  const u64 ticks = (ngroups + 2) / 3;
  u64 checked = 0;
  for (u64 calls = 0; calls < ticks; ++calls) checked += map.scrub(3).groups_checked;
  EXPECT_EQ(checked, 2 * 3 * ticks);
  EXPECT_GE(checked, 2 * ngroups);
  // Wraps: further ticks keep scrubbing rather than going idle.
  EXPECT_EQ(map.scrub(3).groups_checked, 6u);
  EXPECT_EQ(map.metrics().table.groups_scrubbed, checked + 6);
}

TEST(CorruptionMap, ChecksumsCanBeOptedOut) {
  auto map = GroupHashMap::create_in_memory(
      {.initial_cells = 256, .checksum_groups = false});
  for (u64 k = 1; k <= 50; ++k) map.put(k, k);
  EXPECT_FALSE(map.raw_table().checksums_enabled());
  const auto report = map.scrub();
  EXPECT_EQ(report.groups_checked, 0u);
  for (u64 k = 1; k <= 50; ++k) EXPECT_EQ(*map.get(k), k);
}

TEST(CorruptionMapWide, AtRestCorruptionDetectedForWideCells) {
  TempFile file("gh_corrupt_wide.gh");
  {
    auto map = GroupHashMapWide::create(file.path, {.initial_cells = 512});
    for (u64 i = 1; i <= 60; ++i) map.put(Key128{i, i * 7}, i);
    map.close();
  }
  std::string bytes = read_file(file.path);
  const usize cells_at = map_format::kTableOffset + 64;
  bool flipped = false;
  for (usize off = cells_at; off + 32 <= bytes.size() && !flipped; off += 32) {
    u64 meta;
    std::memcpy(&meta, bytes.data() + off, sizeof(meta));
    if (meta & hash::Cell32::kOccupiedBit) {
      bytes[off + 8] = static_cast<char>(bytes[off + 8] ^ 0x10);  // key_lo bit
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  write_file(file.path, bytes);

  auto map = GroupHashMapWide::open(file.path);
  EXPECT_TRUE(map.corruption_detected_on_open());
  EXPECT_GE(map.open_scrub_report().crc_mismatches, 1u);
}

// ---------------------------------------------------------------------------
// Resource exhaustion: expansion failure must degrade, not destroy.
// ---------------------------------------------------------------------------

/// Fails every region-file create while armed — the observable shape of
/// ENOSPC (or an allocation failure) hitting the expansion rebuild.
struct FailCreates : nvm::FsPolicy {
  bool armed = true;
  Decision on_step(const nvm::FsStep& step) override {
    return armed && step.op == nvm::FsOp::kCreate ? Decision::kFail : Decision::kProceed;
  }
};

TEST(CorruptionMap, EnospcDuringExpandDegradesAndLaterInsertRecovers) {
  TempFile file("gh_corrupt_enospc.gh");
  auto map = GroupHashMap::create(file.path, {.initial_cells = 64, .group_size = 16});

  FailCreates policy;
  nvm::ScopedFsPolicy installed(&policy);

  // Fill until a placement failure forces an expansion, which fails.
  std::unordered_map<u64, u64> ref;
  u64 blocked_key = 0;
  for (u64 k = 1; k <= 10000 && blocked_key == 0; ++k) {
    try {
      map.put(k, k * 3);
      ref[k] = k * 3;
    } catch (const MapDegradedError& e) {
      blocked_key = k;
      EXPECT_NE(std::string(e.what()).find("retry"), std::string::npos);
    }
  }
  ASSERT_NE(blocked_key, 0u) << "map never hit its expansion trigger";
  EXPECT_TRUE(map.expand_pending());
  EXPECT_TRUE(map.degraded());
  EXPECT_GE(map.metrics().expand_failures, 1u);
  EXPECT_FALSE(map.last_expand_error().empty());

  // Degraded, not dead: reads are all correct, writes that fit proceed.
  for (const auto& [k, v] : ref) EXPECT_EQ(*map.get(k), v);
  const u64 existing = ref.begin()->first;
  map.put(existing, 4242);  // in-place update needs no placement
  EXPECT_EQ(*map.get(existing), 4242u);
  ref[existing] = 4242;

  // A couple more blocked attempts grow the backoff instead of retrying
  // the doomed expansion on every insert.
  int degraded_throws = 0;
  for (int i = 0; i < 4; ++i) {
    try {
      map.put(blocked_key, blocked_key * 3);
      break;
    } catch (const MapDegradedError&) {
      degraded_throws++;
    }
  }
  EXPECT_EQ(degraded_throws, 4);
  const u64 failures_while_armed = map.metrics().expand_failures;
  EXPECT_GE(failures_while_armed, 2u);

  // Space comes back: the next insert past the backoff window completes
  // the deferred expansion and the map returns to normal.
  policy.armed = false;
  bool inserted = false;
  for (int attempt = 0; attempt < 200 && !inserted; ++attempt) {
    try {
      map.put(blocked_key, blocked_key * 3);
      inserted = true;
    } catch (const MapDegradedError&) {
    }
  }
  ASSERT_TRUE(inserted) << "backoff never allowed the expansion retry";
  ref[blocked_key] = blocked_key * 3;
  EXPECT_FALSE(map.expand_pending());
  EXPECT_FALSE(map.degraded());
  EXPECT_GE(map.metrics().expansions, 1u);
  for (const auto& [k, v] : ref) EXPECT_EQ(*map.get(k), v);

  // And the recovered map is durable: reopen and re-check.
  map.close();
  auto reopened = GroupHashMap::open(file.path);
  EXPECT_FALSE(reopened.corruption_detected_on_open());
  for (const auto& [k, v] : ref) EXPECT_EQ(*reopened.get(k), v);
}

}  // namespace
}  // namespace gh
