// Unified snapshot() API tests + the counter-lifecycle audit:
//   * one call returns persist/table/scrub/lifecycle/latency on a live map
//   * counters survive expansion and string-map compaction (regression:
//     rebuild() used to drop the table stats on compaction)
//   * abandon() resets every observability surface coherently, and
//     metrics()/stats()/snapshot() stay safe to call afterwards
//   * reopen/recovery paths count as such
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/concurrent_map.hpp"
#include "core/group_hash_map.hpp"
#include "core/string_map.hpp"
#include "obs/export.hpp"
#include "obs/snapshot.hpp"

namespace gh {
namespace {

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string p = std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
  std::remove(p.c_str());
  return p;
}

MapOptions every_op_options(u64 cells) {
  // shift=0: time every op, so histogram counts are exact for assertions.
  return {.initial_cells = cells, .latency_sample_shift = 0};
}

TEST(SnapshotApi, LiveMapOneCall) {
  auto map = GroupHashMap::create_in_memory(every_op_options(1 << 12));
  for (u64 k = 1; k <= 1000; ++k) map.put(k, k);
  for (u64 k = 1; k <= 500; ++k) (void)map.get(k);
  (void)map.erase(1);

  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.source, "GroupHashMap");
  EXPECT_EQ(s.size, 999u);
  EXPECT_GT(s.capacity, 0u);
  EXPECT_GT(s.load_factor, 0.0);
  EXPECT_GT(s.persist.lines_flushed, 0u);
  EXPECT_GT(s.persist.fences, 0u);
  EXPECT_GE(s.table.inserts, 1000u);
  EXPECT_GE(s.table.queries, 500u);
  EXPECT_GE(s.table.erase_hits, 1u);
  if (obs::kEnabled) {
    EXPECT_EQ(s.latency.insert.count, 1000u);
    // get() and the upsert's internal lookups both count as finds at the
    // table layer; the map-level find histogram counts get() calls only.
    EXPECT_EQ(s.latency.find.count, 500u);
    EXPECT_EQ(s.latency.erase.count, 1u);
    EXPECT_GT(s.latency.insert.p50_ns, 0.0);
    EXPECT_LE(s.latency.insert.p50_ns, s.latency.insert.p99_ns);
  } else {
    EXPECT_EQ(s.latency.insert.count, 0u);
  }
}

TEST(SnapshotApi, SampledLatencyDefaultsOn) {
  if (!obs::kEnabled) GTEST_SKIP() << "GH_OBS_OFF build";
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 12});
  constexpr u64 kOps = 1000;
  for (u64 k = 1; k <= kOps; ++k) map.put(k, k);
  const obs::Snapshot s = map.snapshot();
  // Default gate: 1 in 2^6 ops timed, first op always admitted.
  EXPECT_GE(s.latency.insert.count, kOps >> obs::kDefaultSampleShift);
  EXPECT_LT(s.latency.insert.count, kOps);
}

TEST(SnapshotApi, CountersSurviveExpansion) {
  auto map = GroupHashMap::create_in_memory(every_op_options(64));
  u64 k = 0;
  obs::Snapshot before = map.snapshot();
  while (map.snapshot().lifecycle.expansions == 0) {
    ++k;
    map.put(k, k);
    ASSERT_LT(k, 100000u) << "map never expanded";
  }
  const obs::Snapshot after = map.snapshot();
  EXPECT_GE(after.table.inserts, k) << "table stats dropped by expansion rebuild";
  EXPECT_GE(after.persist.lines_flushed, before.persist.lines_flushed);
  if (obs::kEnabled) {
    EXPECT_EQ(after.latency.insert.count, k);
    EXPECT_EQ(after.latency.expand.count, 1u);
  }
  // The map still serves every key after the rebuild.
  for (u64 i = 1; i <= k; ++i) ASSERT_TRUE(map.get(i).has_value()) << i;
}

TEST(SnapshotApi, StringMapCountersSurviveCompaction) {
  // Regression: PersistentStringMap::rebuild() used to reset table stats.
  auto map = PersistentStringMap::create_in_memory(
      {.initial_cells = 256, .arena_bytes_per_cell = 32, .latency_sample_shift = 0});
  u64 n = 0;
  while (map.snapshot().lifecycle.compactions == 0) {
    ++n;
    map.put("key-" + std::to_string(n), n);
    ASSERT_LT(n, 100000u) << "map never compacted";
  }
  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.source, "PersistentStringMap");
  EXPECT_GE(s.table.inserts, n) << "table stats dropped by compaction rebuild";
  EXPECT_EQ(s.lifecycle.compactions, 1u);
  if (obs::kEnabled) {
    EXPECT_EQ(s.latency.insert.count, n);
    EXPECT_EQ(s.latency.compact.count, 1u);
  }
  for (u64 i = 1; i <= n; ++i) {
    ASSERT_TRUE(map.get("key-" + std::to_string(i)).has_value()) << i;
  }
}

TEST(SnapshotApi, AbandonResetsCoherentlyAndStaysSafe) {
  auto map = GroupHashMap::create_in_memory(every_op_options(1 << 10));
  for (u64 k = 1; k <= 100; ++k) map.put(k, k);
  ASSERT_GT(map.snapshot().persist.lines_flushed, 0u);
  map.abandon();
  // Every surface is zero together — not a mix of stale and fresh.
  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.size, 0u);
  EXPECT_EQ(s.persist.lines_flushed, 0u);
  EXPECT_EQ(s.table.inserts, 0u);
  EXPECT_EQ(s.latency.insert.count, 0u);
  // Deprecated getters stay callable too.
  const MapMetrics& m = map.metrics();
  EXPECT_EQ(m.table.inserts.load(), 0u);
  EXPECT_EQ(m.persist.lines_flushed.load(), 0u);
}

TEST(SnapshotApi, StringMapAbandonResets) {
  auto map = PersistentStringMap::create_in_memory({.latency_sample_shift = 0});
  map.put("a", 1);
  map.put("b", 2);
  map.abandon();
  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.size, 0u);
  EXPECT_EQ(s.persist.lines_flushed, 0u);
  EXPECT_EQ(s.latency.insert.count, 0u);
  const StringMapStats st = map.stats();
  EXPECT_EQ(st.items, 0u);
  EXPECT_EQ(st.compactions, 0u);
}

TEST(SnapshotApi, RecoveryAfterCrashCounts) {
  const std::string path = temp_path("snapshot_recovery.gh");
  {
    auto map = GroupHashMap::create(path, every_op_options(1 << 10));
    for (u64 k = 1; k <= 200; ++k) map.put(k, k);
    map.abandon();  // simulated crash: superblock stays dirty
  }
  auto map = GroupHashMap::open(path, every_op_options(1 << 10));
  EXPECT_TRUE(map.recovered_on_open());
  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.size, 200u);
  EXPECT_EQ(s.lifecycle.recoveries, 1u);
  if (obs::kEnabled) {
    EXPECT_EQ(s.latency.recover.count, 1u);
  }
  std::remove(path.c_str());
}

TEST(SnapshotApi, CleanReopenStartsFreshCounters) {
  const std::string path = temp_path("snapshot_reopen.gh");
  {
    auto map = GroupHashMap::create(path, every_op_options(1 << 10));
    for (u64 k = 1; k <= 50; ++k) map.put(k, k);
    map.close();
  }
  auto map = GroupHashMap::open(path, every_op_options(1 << 10));
  EXPECT_FALSE(map.recovered_on_open());
  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.size, 50u);         // data is durable...
  EXPECT_EQ(s.lifecycle.recoveries, 0u);
  EXPECT_EQ(s.table.inserts, 0u);  // ...counters are per-process
  if (obs::kEnabled) {
    EXPECT_EQ(s.latency.insert.count, 0u);
  }
  std::remove(path.c_str());
}

TEST(SnapshotApi, ConcurrentWrapperAggregatesShards) {
  ConcurrentGroupHashMap map(4, every_op_options(1 << 12));
  for (u64 k = 1; k <= 2000; ++k) map.put(k, k);
  for (u64 k = 1; k <= 1000; ++k) (void)map.get(k);
  obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.source, "ConcurrentGroupHashMap");
  EXPECT_EQ(s.shards, 4u);
  ASSERT_EQ(s.per_shard.size(), 4u);
  EXPECT_EQ(s.size, 2000u);
  u64 shard_sizes = 0;
  for (const auto& sh : s.per_shard) shard_sizes += sh.size;
  EXPECT_EQ(shard_sizes, 2000u);
  EXPECT_GE(s.table.inserts, 2000u);
  if (obs::kEnabled) {
    EXPECT_EQ(s.latency.insert.count, 2000u);
  }
  // And the whole thing exports.
  std::string error;
  EXPECT_TRUE(obs::validate_json(obs::export_json(s), &error)) << error;
}

TEST(SnapshotApi, SnapshotIsMonotoneBetweenCalls) {
  auto map = GroupHashMap::create_in_memory(every_op_options(1 << 12));
  obs::Snapshot prev = map.snapshot();
  for (int round = 0; round < 5; ++round) {
    for (u64 k = 0; k < 200; ++k) map.put(u64(round) * 200 + k + 1, k);
    const obs::Snapshot cur = map.snapshot();
    EXPECT_GE(cur.table.inserts, prev.table.inserts);
    EXPECT_GE(cur.persist.lines_flushed, prev.persist.lines_flushed);
    EXPECT_GE(cur.latency.insert.count, prev.latency.insert.count);
    prev = cur;
  }
}

}  // namespace
}  // namespace gh
