// Map-level flight forensics: the `.flight` sidecar's lifecycle around
// create/open/abandon, the reopen-time scan surfacing in-flight ops in
// flight_scan_on_open(), open_recovery_report().in_flight_ops and
// snapshot()/export_json, and the GH_OBS_OFF guarantee that no sidecar
// is ever created. Crash-point-exact in-flight assertions live in
// publish_crash_test.cpp; the emit protocol itself is pinned by
// flight_recorder_test.cpp and crash_fuzz_test.cpp.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/group_hash_map.hpp"
#include "core/string_map.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"

namespace gh {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

void cleanup(const std::string& path) {
  fs::remove(path);
  fs::remove(path + ".flight");
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

/// Plant a committed-but-unfinished record into an EMPTY slot of an
/// on-disk sidecar, simulating a crash that stranded `kind` mid-`phase`
/// (the live emit path can only be stranded by a real mid-op crash,
/// which the FaultFs publish suites exercise; here we need a
/// deterministic in-flight op without one).
void inject_in_flight(const std::string& flight_path, obs::OpKind kind,
                      obs::FlightPhase phase, u64 seqno, u64 key_hash) {
  std::vector<std::byte> bytes = read_file(flight_path);
  const obs::FlightScan scan = obs::scan_flight(bytes);
  ASSERT_TRUE(scan.valid_header);
  const u64 total = scan.ring_count * scan.slots_per_ring;
  for (u64 s = 0; s < total; ++s) {
    auto* rec = reinterpret_cast<obs::FlightRecord*>(
        bytes.data() + obs::kFlightHeaderBytes + s * sizeof(obs::FlightRecord));
    if (rec->commit != 0) continue;
    rec->key_hash = key_hash;
    rec->seqno = seqno;
    rec->tsc = 1;
    rec->commit = obs::flight_encode_commit(
        kind, phase, static_cast<u32>(s / scan.slots_per_ring),
        obs::flight_checksum(key_hash, seqno, 1));
    std::ofstream out(flight_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return;
  }
  FAIL() << "no empty slot left in " << flight_path;
}

TEST(FlightForensics, SidecarExistsIffObsCompiledIn) {
  const std::string path = temp_path("gh_flight_sidecar.gh");
  cleanup(path);
  auto map = GroupHashMap::create(path, {.initial_cells = 1 << 10});
  map.put(1, 1);
  EXPECT_EQ(fs::exists(path + ".flight"), obs::kEnabled)
      << "sidecar must exist exactly when obs hooks are compiled in";
  map.close();
  // close() keeps the sidecar — it belongs to the map file, not the
  // process — so a later open can read the previous run's box.
  EXPECT_EQ(fs::exists(path + ".flight"), obs::kEnabled);
  cleanup(path);
}

TEST(FlightForensics, ModeOffCreatesNoSidecar) {
  const std::string path = temp_path("gh_flight_off.gh");
  cleanup(path);
  auto map = GroupHashMap::create(
      path, {.initial_cells = 1 << 10, .flight_mode = obs::FlightMode::kOff});
  map.put(1, 1);
  EXPECT_FALSE(fs::exists(path + ".flight"));
  map.close();
  cleanup(path);
}

TEST(FlightForensics, AbandonedSidecarScansCleanOnReopen) {
  if (!obs::kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  const std::string path = temp_path("gh_flight_abandon.gh");
  cleanup(path);
  {
    auto map = GroupHashMap::create(
        path, {.initial_cells = 1 << 10, .flight_mode = obs::FlightMode::kFull});
    for (u64 k = 1; k <= 100; ++k) map.put(k, k);
    map.abandon();  // crash: sidecar left as-is, superblock dirty
  }
  auto map = GroupHashMap::open(path, {.flight_mode = obs::FlightMode::kFull});
  EXPECT_TRUE(map.recovered_on_open());
  const obs::FlightScan& scan = map.flight_scan_on_open();
  ASSERT_TRUE(scan.valid_header);
  EXPECT_GT(scan.records_valid, 0u) << "kFull mode must have journaled the puts";
  EXPECT_EQ(scan.records_torn, 0u);
  // Every put completed before the "crash", so nothing is in flight and
  // the recovery report says so.
  EXPECT_TRUE(scan.in_flight.empty());
  EXPECT_EQ(map.open_recovery_report().in_flight_ops, 0u);
  map.close();
  cleanup(path);
}

TEST(FlightForensics, InFlightOpSurfacesInReportSnapshotAndJson) {
  if (!obs::kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  const std::string path = temp_path("gh_flight_inflight.gh");
  cleanup(path);
  {
    auto map = GroupHashMap::create(
        path, {.initial_cells = 1 << 10, .flight_mode = obs::FlightMode::kFull});
    for (u64 k = 1; k <= 20; ++k) map.put(k, k);
    map.abandon();
  }
  constexpr u64 kSeqno = 1ull << 40;  // past any real op id of the short run
  inject_in_flight(path + ".flight", obs::OpKind::kExpand, obs::FlightPhase::kPublish,
                   kSeqno, /*key_hash=*/0xfeed);

  auto map = GroupHashMap::open(path, {.flight_mode = obs::FlightMode::kFull});
  EXPECT_TRUE(map.recovered_on_open());

  const obs::FlightScan& scan = map.flight_scan_on_open();
  ASSERT_TRUE(scan.valid_header);
  ASSERT_EQ(scan.in_flight.size(), 1u);
  EXPECT_EQ(scan.in_flight[0].kind, obs::OpKind::kExpand);
  EXPECT_EQ(scan.in_flight[0].phase, obs::FlightPhase::kPublish);
  EXPECT_EQ(scan.in_flight[0].seqno, kSeqno);
  EXPECT_EQ(scan.in_flight[0].key_hash, 0xfeedu);
  EXPECT_EQ(map.open_recovery_report().in_flight_ops, 1u);

  // The same forensics must flow through snapshot() and its JSON export.
  obs::Snapshot s = map.snapshot();
  EXPECT_TRUE(s.flight.enabled);
  ASSERT_EQ(s.flight.in_flight_on_open.size(), 1u);
  EXPECT_EQ(s.flight.in_flight_on_open[0].kind, obs::OpKind::kExpand);
  const std::string json = obs::export_json(s);
  std::string error;
  EXPECT_TRUE(obs::validate_json(json, &error)) << error;
  EXPECT_NE(json.find("\"in_flight\""), std::string::npos);
  EXPECT_NE(json.find("\"expand\""), std::string::npos);
  EXPECT_NE(json.find("\"publish\""), std::string::npos);
  map.close();
  cleanup(path);
}

TEST(FlightForensics, CleanReopenConsumesTheBox) {
  if (!obs::kEnabled) GTEST_SKIP() << "recorder compiled out (GH_OBS_OFF)";
  const std::string path = temp_path("gh_flight_consume.gh");
  cleanup(path);
  {
    auto map = GroupHashMap::create(
        path, {.initial_cells = 1 << 10, .flight_mode = obs::FlightMode::kFull});
    for (u64 k = 1; k <= 50; ++k) map.put(k, k);
    map.close();
  }
  {
    // First reopen reads the previous run's records…
    auto map = GroupHashMap::open(path, {.flight_mode = obs::FlightMode::kFull});
    EXPECT_FALSE(map.recovered_on_open());
    EXPECT_GT(map.flight_scan_on_open().records_valid, 0u);
    map.close();  // …and this run journaled nothing (no ops), so
  }
  {
    // …the second reopen finds a freshly formatted (empty) box.
    auto map = GroupHashMap::open(path, {.flight_mode = obs::FlightMode::kFull});
    ASSERT_TRUE(map.flight_scan_on_open().valid_header);
    EXPECT_EQ(map.flight_scan_on_open().records_valid, 0u);
    map.close();
  }
  cleanup(path);
}

TEST(FlightForensics, StringMapSidecarAndForensics) {
  const std::string path = temp_path("gh_flight_smap.gh");
  cleanup(path);
  {
    auto map = PersistentStringMap::create(
        path, {.flight_mode = obs::FlightMode::kFull});
    for (int k = 0; k < 40; ++k) map.put("key" + std::to_string(k), k);
    EXPECT_EQ(fs::exists(path + ".flight"), obs::kEnabled);
    map.abandon();
  }
  if (!obs::kEnabled) {
    cleanup(path);
    return;
  }
  inject_in_flight(path + ".flight", obs::OpKind::kCompact, obs::FlightPhase::kStart,
                   /*seqno=*/1ull << 40, /*key_hash=*/7);

  auto map = PersistentStringMap::open(path, {.flight_mode = obs::FlightMode::kFull});
  EXPECT_TRUE(map.recovered_on_open());
  const obs::FlightScan& scan = map.flight_scan_on_open();
  ASSERT_TRUE(scan.valid_header);
  EXPECT_EQ(scan.records_torn, 0u);
  ASSERT_EQ(scan.in_flight.size(), 1u);
  EXPECT_EQ(scan.in_flight[0].kind, obs::OpKind::kCompact);
  EXPECT_EQ(map.open_recovery_report().in_flight_ops, 1u);
  obs::Snapshot s = map.snapshot();
  EXPECT_TRUE(s.flight.enabled);
  EXPECT_EQ(s.flight.in_flight_on_open.size(), 1u);
  // Data must have survived recovery alongside the forensics.
  for (int k = 0; k < 40; ++k) {
    ASSERT_EQ(map.get("key" + std::to_string(k)), static_cast<u64>(k));
  }
  map.close();
  cleanup(path);
}

TEST(FlightForensics, InMemoryMapRecordsWithoutSidecar) {
  auto map = GroupHashMap::create_in_memory(
      {.initial_cells = 1 << 10, .flight_mode = obs::FlightMode::kFull});
  for (u64 k = 1; k <= 10; ++k) map.put(k, k);
  obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.flight.enabled, obs::kEnabled)
      << "anonymous flight region must back in-memory maps";
}

}  // namespace
}  // namespace gh
