// Crash-at-every-publish-step recovery for the whole-file rebuild paths.
//
// expand() (GroupHashMap) and compact() (PersistentStringMap) publish a
// rebuilt map with: tmp create → write-back (msync) → rename →
// fsync(parent dir). Those steps live in the filesystem, outside the
// ShadowPM crash simulator, so this suite drives them through FaultFs
// (src/nvm/fault_fs.hpp) instead:
//
//   1. a record run traces every filesystem step the operation performs;
//   2. one trial per step boundary replays the identical operation and
//      crashes (SimulatedCrash) before that step, leaving exactly the
//      directory state a power failure there would leave;
//   3. the map is reopened and must equal a sequential oracle, with zero
//      leaked temp files.
//
// A crash before the write-back additionally gets a "torn temp file"
// variant: the temp file's content is overwritten with garbage (a real
// power failure there loses the page-cache writes), and open() must
// still reclaim it and trust only the published file. Injected *step
// failures* (syscall errors, process survives) exercise the cleanup
// paths: a failed rename must unlink the temp file before throwing and
// leave the map fully usable.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/group_hash_map.hpp"
#include "core/string_map.hpp"
#include "nvm/fault_fs.hpp"
#include "obs/flight_recorder.hpp"

namespace gh {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Forensics half of every crash trial: the reopened map's flight scan
/// must name the exact lifecycle op that was mid-publish. The rebuild
/// paths emit their start record before the tmp-file create (publish
/// step 0) and their publish mark right before the msync — so a crash
/// before step k of the 4-step schedule {create, syncdata, rename,
/// syncdir} strands the op at kStart for k % 4 == 0 and at kPublish for
/// every later step.
template <class Map>
void expect_in_flight(const Map& map, obs::OpKind kind, usize k) {
  if (!obs::kEnabled) return;
  const obs::FlightScan& scan = map.flight_scan_on_open();
  ASSERT_TRUE(scan.valid_header);
  EXPECT_EQ(scan.records_torn, 0u);
  const obs::InFlightOp* found = nullptr;
  for (const obs::InFlightOp& op : scan.in_flight) {
    if (op.kind == kind) found = &op;
  }
  ASSERT_NE(found, nullptr) << "recorder must name the " << obs::op_kind_name(kind)
                            << " that died mid-publish";
  EXPECT_EQ(found->phase, k % 4 == 0 ? obs::FlightPhase::kStart
                                     : obs::FlightPhase::kPublish)
      << "crash before publish step " << k;
  EXPECT_GE(map.open_recovery_report().in_flight_ops, 1u);
}

void write_junk_file(const std::string& path, usize bytes = 4096) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  for (usize i = 0; i < bytes; ++i) out.put(static_cast<char>(0xCB));
}

/// Overwrite an existing file's content with garbage, preserving its
/// size: the directory state of a crash that lost the write-back.
void corrupt_file(const std::string& path) {
  const auto size = fs::file_size(path);
  std::ofstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(out.good());
  for (uintmax_t i = 0; i < size; ++i) out.put(static_cast<char>(0xCB));
}

// ---------------------------------------------------------------------------
// GroupHashMap::expand()

constexpr u64 kExpandKeys = 300;  // forces several expansions from 64 cells
u64 gh_key(u64 i) { return 2 * i + 1; }
u64 gh_value(u64 i) { return i * 31 + 7; }

MapOptions small_map_options() {
  return {.initial_cells = 64, .group_size = 8, .flush_latency_ns = 0};
}

/// Runs the deterministic expand workload under `policy`. Returns the
/// number of puts committed before a SimulatedCrash (kExpandKeys when
/// none fired).
u64 run_expand_workload(const std::string& path, nvm::CrashScheduleFs& policy) {
  auto map = GroupHashMap::create(path, small_map_options());
  const nvm::ScopedFsPolicy installed(&policy);
  u64 committed = 0;
  for (u64 i = 0; i < kExpandKeys; ++i) {
    try {
      map.put(gh_key(i), gh_value(i));
    } catch (const nvm::SimulatedCrash&) {
      map.abandon();
      return committed;
    }
    committed = i + 1;
  }
  map.abandon();
  return committed;
}

TEST(PublishCrash, ExpandCrashAtEveryStepRecoversToOracle) {
  const std::string path = temp_path("gh_publish_crash_expand.gh");
  const std::string tmp = path + ".expand";
  fs::remove(path);
  fs::remove(tmp);

  // Record run: trace the full schedule, no crashes.
  nvm::CrashScheduleFs recorder;
  ASSERT_EQ(run_expand_workload(path, recorder), kExpandKeys);
  const auto schedule = recorder.trace;
  ASSERT_GE(schedule.size(), 4u) << "workload must trigger at least one expansion";
  ASSERT_EQ(schedule.size() % 4, 0u);
  for (usize i = 0; i < schedule.size(); i += 4) {
    // Each expansion is exactly the durable publish protocol, in order.
    EXPECT_EQ(schedule[i + 0].op, nvm::FsOp::kCreate);
    EXPECT_EQ(schedule[i + 1].op, nvm::FsOp::kSyncData);
    EXPECT_EQ(schedule[i + 2].op, nvm::FsOp::kRename);
    EXPECT_EQ(schedule[i + 3].op, nvm::FsOp::kSyncDir);
    EXPECT_EQ(schedule[i + 0].path, tmp);
    EXPECT_EQ(schedule[i + 2].path, tmp);
    EXPECT_EQ(schedule[i + 2].path2, path);
  }

  // One trial per step boundary; crash-before-kSyncData additionally
  // runs a torn-temp-file variant.
  for (usize k = 0; k < schedule.size(); ++k) {
    const bool torn_variant_too = schedule[k].op == nvm::FsOp::kSyncData;
    for (const bool torn : {false, true}) {
      if (torn && !torn_variant_too) continue;
      SCOPED_TRACE("crash before step " + std::to_string(k) + " (" +
                   nvm::to_string(schedule[k].op) + (torn ? ", torn tmp)" : ")"));
      fs::remove(path);
      fs::remove(tmp);

      nvm::CrashScheduleFs policy;
      policy.crash_at = k;
      const u64 committed = run_expand_workload(path, policy);
      ASSERT_LT(committed, kExpandKeys) << "schedule replay must crash";
      if (torn) {
        ASSERT_TRUE(fs::exists(tmp));
        corrupt_file(tmp);
      }

      auto map = GroupHashMap::open(path);
      EXPECT_FALSE(fs::exists(tmp)) << "open() must reclaim the orphan";
      EXPECT_TRUE(map.recovered_on_open());
      expect_in_flight(map, obs::OpKind::kExpand, k);
      EXPECT_EQ(map.size(), committed);
      for (u64 i = 0; i < committed; ++i) {
        const auto got = map.get(gh_key(i));
        ASSERT_TRUE(got.has_value()) << "key " << i;
        EXPECT_EQ(*got, gh_value(i)) << "key " << i;
      }
      EXPECT_FALSE(map.get(gh_key(committed)).has_value())
          << "the interrupted put must not have half-landed";

      // The reopened map must keep working, including further expansions.
      for (u64 i = committed; i < kExpandKeys; ++i) map.put(gh_key(i), gh_value(i));
      EXPECT_EQ(map.size(), kExpandKeys);
      map.close();
    }
  }
  fs::remove(path);
  fs::remove(path + ".flight");
}

TEST(PublishCrash, ExpandRenameFailureCleansTempAndKeepsMapUsable) {
  const std::string path = temp_path("gh_publish_fail_expand.gh");
  const std::string tmp = path + ".expand";
  fs::remove(path);
  fs::remove(tmp);

  nvm::CrashScheduleFs recorder;
  ASSERT_EQ(run_expand_workload(path, recorder), kExpandKeys);
  usize first_rename = 0;
  while (recorder.trace[first_rename].op != nvm::FsOp::kRename) first_rename++;

  fs::remove(path);
  fs::remove(tmp);
  auto map = GroupHashMap::create(path, small_map_options());
  nvm::CrashScheduleFs policy;
  policy.fail_at = first_rename;
  u64 committed = 0;
  bool threw = false;
  {
    const nvm::ScopedFsPolicy installed(&policy);
    for (u64 i = 0; i < kExpandKeys; ++i) {
      try {
        map.put(gh_key(i), gh_value(i));
        committed = i + 1;
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("publish expanded"), std::string::npos)
            << e.what();
        threw = true;
        break;
      }
    }
  }
  ASSERT_TRUE(threw);
  EXPECT_FALSE(fs::exists(tmp)) << "failed publish must not leak the temp file";

  // The process survived: the map still runs on the old table and the
  // failed put can simply be retried now that the fault is gone.
  for (u64 i = 0; i < committed; ++i) EXPECT_EQ(*map.get(gh_key(i)), gh_value(i));
  for (u64 i = committed; i < kExpandKeys; ++i) map.put(gh_key(i), gh_value(i));
  EXPECT_EQ(map.size(), kExpandKeys);
  map.close();
  fs::remove(path);
}

TEST(PublishCrash, OpenReclaimsStaleExpandOrphan) {
  const std::string path = temp_path("gh_orphan_expand.gh");
  const std::string tmp = path + ".expand";
  fs::remove(path);
  fs::remove(tmp);
  {
    auto map = GroupHashMap::create(path, small_map_options());
    for (u64 i = 0; i < 20; ++i) map.put(gh_key(i), gh_value(i));
    map.close();
  }
  write_junk_file(tmp);
  {
    auto map = GroupHashMap::open(path);
    EXPECT_EQ(map.orphans_reclaimed_on_open(), 1u);
    EXPECT_FALSE(fs::exists(tmp));
    EXPECT_EQ(map.size(), 20u);
    for (u64 i = 0; i < 20; ++i) EXPECT_EQ(*map.get(gh_key(i)), gh_value(i));
    map.close();
  }
  // create() over the same path also clears a stale orphan.
  write_junk_file(tmp);
  {
    auto map = GroupHashMap::create(path, small_map_options());
    EXPECT_FALSE(fs::exists(tmp));
    map.close();
  }
  fs::remove(path);
}

TEST(PublishCrash, CrashDuringOrphanReclaimIsIdempotent) {
  const std::string path = temp_path("gh_orphan_crash.gh");
  const std::string tmp = path + ".expand";
  fs::remove(path);
  fs::remove(tmp);
  {
    auto map = GroupHashMap::create(path, small_map_options());
    map.put(gh_key(1), gh_value(1));
    map.close();
  }
  write_junk_file(tmp);
  {
    nvm::CrashScheduleFs policy;
    policy.crash_at = 0;  // the kRemove of the orphan
    const nvm::ScopedFsPolicy installed(&policy);
    EXPECT_THROW((void)GroupHashMap::open(path), nvm::SimulatedCrash);
  }
  EXPECT_TRUE(fs::exists(tmp)) << "crash before the unlink leaves the orphan";
  auto map = GroupHashMap::open(path);
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_EQ(*map.get(gh_key(1)), gh_value(1));
  map.close();
  fs::remove(path);
}

TEST(PublishCrash, CorruptSuperblockIsRejectedNotTrusted) {
  const std::string path = temp_path("gh_corrupt_sb.gh");
  fs::remove(path);
  {
    auto map = GroupHashMap::create(path, small_map_options());
    map.put(gh_key(1), gh_value(1));
    map.close();
  }
  // Forge table bounds that point past the mapped file. The magic and
  // version stay valid, so only the geometry validation can catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const u64 huge = 1ull << 40;
    f.seekp(5 * sizeof(u64));  // Superblock::table_bytes
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW((void)GroupHashMap::open(path), std::runtime_error);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// PersistentStringMap::compact()

StringMapOptions small_string_options() {
  return {.initial_cells = 64, .group_size = 8, .flush_latency_ns = 0};
}

std::string sm_key(u64 i) { return "key-" + std::to_string(i); }

/// Builds the deterministic pre-compaction state: 40 keys live, 20
/// erased (arena garbage for the compaction to reclaim).
std::map<std::string, u64> build_string_map(PersistentStringMap& map) {
  std::map<std::string, u64> oracle;
  for (u64 i = 0; i < 60; ++i) {
    map.put(sm_key(i), i * 13 + 1);
    oracle[sm_key(i)] = i * 13 + 1;
  }
  for (u64 i = 0; i < 60; i += 3) {
    map.erase(sm_key(i));
    oracle.erase(sm_key(i));
  }
  return oracle;
}

void verify_string_map(PersistentStringMap& map, const std::map<std::string, u64>& oracle) {
  EXPECT_EQ(map.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    const auto got = map.get(key);
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

TEST(PublishCrash, CompactCrashAtEveryStepRecoversToOracle) {
  const std::string path = temp_path("gh_publish_crash_compact.gh");
  const std::string tmp = path + ".compact";
  fs::remove(path);
  fs::remove(tmp);

  // Record run: a compaction is exactly one durable publish.
  nvm::CrashScheduleFs recorder;
  {
    auto map = PersistentStringMap::create(path, small_string_options());
    build_string_map(map);
    const nvm::ScopedFsPolicy installed(&recorder);
    map.compact();
    map.abandon();
  }
  const auto schedule = recorder.trace;
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule[0].op, nvm::FsOp::kCreate);
  EXPECT_EQ(schedule[1].op, nvm::FsOp::kSyncData);
  EXPECT_EQ(schedule[2].op, nvm::FsOp::kRename);
  EXPECT_EQ(schedule[3].op, nvm::FsOp::kSyncDir);
  EXPECT_EQ(schedule[2].path, tmp);
  EXPECT_EQ(schedule[2].path2, path);

  for (usize k = 0; k < schedule.size(); ++k) {
    const bool torn_variant_too = schedule[k].op == nvm::FsOp::kSyncData;
    for (const bool torn : {false, true}) {
      if (torn && !torn_variant_too) continue;
      SCOPED_TRACE("crash before step " + std::to_string(k) + " (" +
                   nvm::to_string(schedule[k].op) + (torn ? ", torn tmp)" : ")"));
      fs::remove(path);
      fs::remove(tmp);

      std::map<std::string, u64> oracle;
      {
        auto map = PersistentStringMap::create(path, small_string_options());
        oracle = build_string_map(map);
        nvm::CrashScheduleFs policy;
        policy.crash_at = k;
        const nvm::ScopedFsPolicy installed(&policy);
        EXPECT_THROW(map.compact(), nvm::SimulatedCrash);
        map.abandon();
      }
      if (torn) {
        ASSERT_TRUE(fs::exists(tmp));
        corrupt_file(tmp);
      }

      auto map = PersistentStringMap::open(path, small_string_options());
      EXPECT_FALSE(fs::exists(tmp)) << "open() must reclaim the orphan";
      EXPECT_TRUE(map.recovered_on_open());
      expect_in_flight(map, obs::OpKind::kCompact, k);
      verify_string_map(map, oracle);

      // The reopened map keeps working — including a clean compaction.
      map.compact();
      verify_string_map(map, oracle);
      EXPECT_FALSE(fs::exists(tmp));
      map.close();
    }
  }
  fs::remove(path);
  fs::remove(path + ".flight");
}

TEST(PublishCrash, CompactRenameFailureCleansTempAndKeepsMapUsable) {
  const std::string path = temp_path("gh_publish_fail_compact.gh");
  const std::string tmp = path + ".compact";
  fs::remove(path);
  fs::remove(tmp);

  auto map = PersistentStringMap::create(path, small_string_options());
  const auto oracle = build_string_map(map);
  {
    nvm::CrashScheduleFs policy;
    policy.fail_at = 2;  // the kRename step of the single publish
    const nvm::ScopedFsPolicy installed(&policy);
    try {
      map.compact();
      FAIL() << "compact() must surface the rename failure";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("publish compacted"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_FALSE(fs::exists(tmp)) << "failed publish must not leak the temp file";
  verify_string_map(map, oracle);
  map.compact();  // fault gone: the retry succeeds
  verify_string_map(map, oracle);
  map.close();
  fs::remove(path);
}

TEST(PublishCrash, StringMapOpenReclaimsStaleCompactOrphan) {
  const std::string path = temp_path("gh_orphan_compact.gh");
  const std::string tmp = path + ".compact";
  fs::remove(path);
  fs::remove(tmp);
  std::map<std::string, u64> oracle;
  {
    auto map = PersistentStringMap::create(path, small_string_options());
    oracle = build_string_map(map);
    map.close();
  }
  write_junk_file(tmp);
  {
    auto map = PersistentStringMap::open(path, small_string_options());
    EXPECT_EQ(map.orphans_reclaimed_on_open(), 1u);
    EXPECT_FALSE(fs::exists(tmp));
    verify_string_map(map, oracle);
    map.close();
  }
  fs::remove(path);
}

}  // namespace
}  // namespace gh
