#include "core/concurrent_table.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>

#include "util/rng.hpp"

namespace gh {
namespace {

TEST(ConcurrentTable, SingleThreadedSemantics) {
  ConcurrentGroupHashTable t({.total_cells = 1 << 12, .group_size = 64});
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_EQ(*t.find(1), 10u);
  EXPECT_TRUE(t.update(1, 11));
  EXPECT_EQ(*t.find(1), 11u);
  t.put(2, 20);
  t.put(2, 21);
  EXPECT_EQ(*t.find(2), 21u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_EQ(t.count(), 1u);
}

TEST(ConcurrentTable, StripesClampToGroupCount) {
  ConcurrentGroupHashTable small({.total_cells = 256, .group_size = 64});
  // 128 level-1 cells / 64 per group = 2 groups.
  EXPECT_LE(small.lock_stripes(), 2u);
  ConcurrentGroupHashTable big({.total_cells = 1 << 16, .group_size = 64});
  EXPECT_GE(big.lock_stripes(), 256u);
}

TEST(ConcurrentTable, ParallelWritersDisjointKeys) {
  ConcurrentGroupHashTable t({.total_cells = 1 << 16, .group_size = 64});
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&t, id] {
      for (u64 i = 0; i < kPerThread; ++i) {
        const u64 k = static_cast<u64>(id) * kPerThread + i + 1;
        ASSERT_TRUE(t.insert(k, k * 3));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.count(), kThreads * kPerThread);  // exact even under races
  for (u64 k = 1; k <= kThreads * kPerThread; ++k) {
    ASSERT_TRUE(t.find(k).has_value()) << k;
    EXPECT_EQ(*t.find(k), k * 3);
  }
}

TEST(ConcurrentTable, ContendedSameGroupUpserts) {
  // All threads hammer the SAME small key set: every op contends on the
  // same few group locks. Values must remain torn-free and counts exact.
  ConcurrentGroupHashTable t({.total_cells = 1 << 12, .group_size = 64});
  for (u64 k = 1; k <= 8; ++k) t.put(k, k * 1000);  // establish the encoding
  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < 6; ++id) {
    threads.emplace_back([&, id] {
      Xoshiro256 rng(id + 1);
      for (int i = 0; i < 20000; ++i) {
        const u64 k = rng.next_below(8) + 1;
        if (rng.next_bool()) {
          // Values encode their key so readers can detect tearing.
          t.put(k, k * 1000 + rng.next_below(1000));
        } else {
          const auto v = t.find(k);
          if (v && *v / 1000 != k) torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(t.count(), 8u);
  for (u64 k = 1; k <= 8; ++k) EXPECT_EQ(*t.find(k) / 1000, k);
}

TEST(ConcurrentTable, InsertEraseChurnKeepsCountExact) {
  ConcurrentGroupHashTable t({.total_cells = 1 << 14, .group_size = 64});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&t, id] {
      // Each thread owns a key range and inserts/erases repeatedly,
      // ending with every key present exactly once.
      const u64 base = static_cast<u64>(id) << 32;
      for (int round = 0; round < 3; ++round) {
        for (u64 i = 1; i <= 1000; ++i) ASSERT_TRUE(t.insert(base + i, i));
        for (u64 i = 1; i <= 1000; ++i) ASSERT_TRUE(t.erase(base + i));
      }
      for (u64 i = 1; i <= 1000; ++i) ASSERT_TRUE(t.insert(base + i, i));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.count(), kThreads * 1000u);
  const auto report = t.recover();
  EXPECT_EQ(report.recovered_count, kThreads * 1000u);
}

TEST(ConcurrentTable, WideKeysWork) {
  ConcurrentGroupHashTableWide t({.total_cells = 1 << 10, .group_size = 32});
  t.put(Key128{1, 2}, 3);
  EXPECT_EQ(*t.find(Key128{1, 2}), 3u);
  EXPECT_TRUE(t.erase(Key128{1, 2}));
}

}  // namespace
}  // namespace gh
