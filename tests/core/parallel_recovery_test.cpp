#include "core/parallel_recovery.hpp"

#include <gtest/gtest.h>

#include "hash/cells.hpp"
#include "nvm/region.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;

class ParallelRecoveryTest : public ::testing::Test {
 protected:
  Table& init(u64 level_cells, u32 group_size = 64) {
    const Table::Params p{.level_cells = level_cells, .group_size = group_size};
    region_ = nvm::NvmRegion::create_anonymous(Table::required_bytes(p));
    table_.emplace(pm_, region_.bytes().first(Table::required_bytes(p)), p, true);
    return *table_;
  }

  void forge_torn_cells(usize how_many) {
    auto* cells = reinterpret_cast<hash::Cell16*>(region_.data() + 64);
    usize forged = 0;
    for (usize i = 0; forged < how_many; ++i) {
      if (!cells[i].occupied() && !cells[i].payload_dirty()) {
        cells[i].value = 0xbad0000 + i;
        ++forged;
      }
    }
  }

  nvm::NvmRegion region_;
  nvm::DirectPM pm_{nvm::PersistConfig::counting_only()};
  std::optional<Table> table_;
};

TEST_F(ParallelRecoveryTest, MatchesSequentialRecovery) {
  auto& t = init(1 << 14);
  Xoshiro256 rng(5);
  while (t.load_factor() < 0.5) {
    t.insert(rng.next_below(1ull << 40) + 1, rng.next());
  }
  forge_torn_cells(17);
  const u64 expected_count = t.count();

  const auto par = parallel_recover(t, 4);
  EXPECT_EQ(par.report.recovered_count, expected_count);
  EXPECT_EQ(par.report.cells_scrubbed, 17u);
  EXPECT_EQ(par.report.cells_scanned, t.capacity());
  EXPECT_EQ(t.count(), expected_count);

  // A sequential pass afterwards finds nothing left to do.
  const auto seq = t.recover();
  EXPECT_EQ(seq.cells_scrubbed, 0u);
  EXPECT_EQ(seq.recovered_count, expected_count);
}

TEST_F(ParallelRecoveryTest, ContentsIntactAfterParallelScrub) {
  auto& t = init(1 << 13);
  std::vector<std::pair<u64, u64>> items;
  Xoshiro256 rng(7);
  while (t.load_factor() < 0.4) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    const u64 v = rng.next();
    if (t.insert(k, v)) items.push_back({k, v});
  }
  forge_torn_cells(5);
  parallel_recover(t, 8);
  for (const auto& [k, v] : items) {
    const auto found = t.find(k);
    ASSERT_TRUE(found.has_value()) << k;
    EXPECT_EQ(*found, v);
  }
}

TEST_F(ParallelRecoveryTest, SmallTablesFallBackToSequential) {
  auto& t = init(256, 16);
  t.insert(1, 1);
  const auto r = parallel_recover(t, 8);
  EXPECT_EQ(r.threads_used, 1u);  // 256 level cells < per-thread minimum
  EXPECT_EQ(r.report.recovered_count, 1u);
}

TEST_F(ParallelRecoveryTest, ThreadCountVariantsAgree) {
  for (const u32 threads : {2u, 3u, 5u, 8u}) {
    auto& t = init(1 << 13);
    Xoshiro256 rng(threads);
    while (t.load_factor() < 0.3) {
      t.insert(rng.next_below(1ull << 40) + 1, 9);
    }
    const u64 expected = t.count();
    const auto r = parallel_recover(t, threads);
    EXPECT_EQ(r.report.recovered_count, expected) << threads << " threads";
    EXPECT_EQ(r.report.cells_scanned, t.capacity()) << threads << " threads";
  }
}

}  // namespace
}  // namespace gh
