#include "core/parallel_recovery.hpp"

#include <gtest/gtest.h>

#include "hash/cells.hpp"
#include "nvm/region.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;

class ParallelRecoveryTest : public ::testing::Test {
 protected:
  Table& init(u64 level_cells, u32 group_size = 64) {
    const Table::Params p{.level_cells = level_cells, .group_size = group_size};
    region_ = nvm::NvmRegion::create_anonymous(Table::required_bytes(p));
    table_.emplace(pm_, region_.bytes().first(Table::required_bytes(p)), p, true);
    return *table_;
  }

  void forge_torn_cells(usize how_many) {
    auto* cells = reinterpret_cast<hash::Cell16*>(region_.data() + 64);
    usize forged = 0;
    for (usize i = 0; forged < how_many; ++i) {
      if (!cells[i].occupied() && !cells[i].payload_dirty()) {
        cells[i].value = 0xbad0000 + i;
        ++forged;
      }
    }
  }

  nvm::NvmRegion region_;
  nvm::DirectPM pm_{nvm::PersistConfig::counting_only()};
  std::optional<Table> table_;
};

TEST_F(ParallelRecoveryTest, MatchesSequentialRecovery) {
  auto& t = init(1 << 14);
  Xoshiro256 rng(5);
  while (t.load_factor() < 0.5) {
    t.insert(rng.next_below(1ull << 40) + 1, rng.next());
  }
  forge_torn_cells(17);
  const u64 expected_count = t.count();

  const auto par = parallel_recover(t, 4);
  EXPECT_EQ(par.report.recovered_count, expected_count);
  EXPECT_EQ(par.report.cells_scrubbed, 17u);
  EXPECT_EQ(par.report.cells_scanned, t.capacity());
  EXPECT_EQ(t.count(), expected_count);

  // A sequential pass afterwards finds nothing left to do.
  const auto seq = t.recover();
  EXPECT_EQ(seq.cells_scrubbed, 0u);
  EXPECT_EQ(seq.recovered_count, expected_count);
}

TEST_F(ParallelRecoveryTest, ContentsIntactAfterParallelScrub) {
  auto& t = init(1 << 13);
  std::vector<std::pair<u64, u64>> items;
  Xoshiro256 rng(7);
  while (t.load_factor() < 0.4) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    const u64 v = rng.next();
    if (t.insert(k, v)) items.push_back({k, v});
  }
  forge_torn_cells(5);
  parallel_recover(t, 8);
  for (const auto& [k, v] : items) {
    const auto found = t.find(k);
    ASSERT_TRUE(found.has_value()) << k;
    EXPECT_EQ(*found, v);
  }
}

TEST_F(ParallelRecoveryTest, SmallTablesFallBackToSequential) {
  auto& t = init(256, 16);
  t.insert(1, 1);
  const auto r = parallel_recover(t, 8);
  EXPECT_EQ(r.threads_used, 1u);  // 256 level cells < per-thread minimum
  EXPECT_EQ(r.report.recovered_count, 1u);
}

// Regression: worker DirectPMs used to be dropped on join, silently
// discarding the scrub traffic — parallel recovery looked free in the
// flush/fence accounting while sequential recovery did not.
TEST_F(ParallelRecoveryTest, PersistAccountingMatchesSequential) {
  // Two identically-built tables: recover one sequentially and one in
  // parallel, and require identical NVM-traffic deltas.
  const Table::Params p{.level_cells = 1 << 13, .group_size = 64};
  nvm::NvmRegion region_seq = nvm::NvmRegion::create_anonymous(Table::required_bytes(p));
  nvm::NvmRegion region_par = nvm::NvmRegion::create_anonymous(Table::required_bytes(p));
  nvm::DirectPM pm_seq{nvm::PersistConfig::counting_only()};
  nvm::DirectPM pm_par{nvm::PersistConfig::counting_only()};
  Table seq(pm_seq, region_seq.bytes().first(Table::required_bytes(p)), p, true);
  Table par(pm_par, region_par.bytes().first(Table::required_bytes(p)), p, true);
  for (const auto& [table, region] : {std::pair{&seq, &region_seq}, {&par, &region_par}}) {
    Xoshiro256 rng(11);
    while (table->load_factor() < 0.4) {
      table->insert(rng.next_below(1ull << 40) + 1, rng.next());
    }
    auto* cells = reinterpret_cast<hash::Cell16*>(region->data() + 64);
    usize forged = 0;
    for (usize i = 0; forged < 23; ++i) {
      if (!cells[i].occupied() && !cells[i].payload_dirty()) {
        cells[i].value = 0xbad0000 + i;
        ++forged;
      }
    }
  }

  const nvm::PersistStats seq_before = pm_seq.stats();
  const auto seq_report = seq.recover();
  const nvm::PersistStats par_before = pm_par.stats();
  const auto par_result = parallel_recover(par, 4);
  ASSERT_GT(par_result.threads_used, 1u);
  ASSERT_EQ(par_result.report.cells_scrubbed, seq_report.cells_scrubbed);

  // The merged worker traffic is visible in the result...
  EXPECT_GT(par_result.persist.persist_calls.load(), 0u);
  EXPECT_GE(par_result.persist.persist_calls.load(),
            par_result.report.cells_scrubbed);
  // ...and folded into the table's own policy, making the end-to-end
  // deltas identical to the sequential path.
  EXPECT_EQ(pm_par.stats().persist_calls - par_before.persist_calls,
            pm_seq.stats().persist_calls - seq_before.persist_calls);
  EXPECT_EQ(pm_par.stats().lines_flushed - par_before.lines_flushed,
            pm_seq.stats().lines_flushed - seq_before.lines_flushed);
  EXPECT_EQ(pm_par.stats().stores - par_before.stores,
            pm_seq.stats().stores - seq_before.stores);
  EXPECT_EQ(pm_par.stats().bytes_written - par_before.bytes_written,
            pm_seq.stats().bytes_written - seq_before.bytes_written);
  EXPECT_EQ(pm_par.stats().fences - par_before.fences,
            pm_seq.stats().fences - seq_before.fences);
}

TEST_F(ParallelRecoveryTest, ThreadCountVariantsAgree) {
  for (const u32 threads : {2u, 3u, 5u, 8u}) {
    auto& t = init(1 << 13);
    Xoshiro256 rng(threads);
    while (t.load_factor() < 0.3) {
      t.insert(rng.next_below(1ull << 40) + 1, 9);
    }
    const u64 expected = t.count();
    const auto r = parallel_recover(t, threads);
    EXPECT_EQ(r.report.recovered_count, expected) << threads << " threads";
    EXPECT_EQ(r.report.cells_scanned, t.capacity()) << threads << " threads";
  }
}

}  // namespace
}  // namespace gh
