// gh::Options builder tests: validation throws std::invalid_argument at
// configuration time, the conversions carry every shared knob into the
// legacy structs, and the implicit conversions let every existing factory
// accept an Options without new overloads.
#include "core/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/group_hash_map.hpp"
#include "core/string_map.hpp"
#include "hash/any_table.hpp"

namespace gh {
namespace {

TEST(OptionsBuilder, DefaultsValidate) {
  EXPECT_NO_THROW(Options().validate());
}

TEST(OptionsBuilder, RejectsBadKnobsWithNamedMessages) {
  EXPECT_THROW(Options().initial_cells(0).validate(), std::invalid_argument);
  EXPECT_THROW(Options().group_size(0).validate(), std::invalid_argument);
  EXPECT_THROW(Options().group_size(48).validate(), std::invalid_argument);  // not pow2
  EXPECT_THROW(Options().arena_bytes_per_cell(0).validate(), std::invalid_argument);
  EXPECT_THROW(Options().with_wal(true, 0).validate(), std::invalid_argument);
  EXPECT_THROW(Options().flush_latency_ns(20'000'000).validate(), std::invalid_argument);
  EXPECT_THROW(Options().reserved_levels(0).validate(), std::invalid_argument);
  EXPECT_THROW(Options().latency_sample_shift(40).validate(), std::invalid_argument);
  try {
    Options().group_size(48).validate();
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("group_size"), std::string::npos);
  }
}

TEST(OptionsBuilder, ConversionRunsValidation) {
  EXPECT_THROW((void)Options().initial_cells(0).to_map_options(), std::invalid_argument);
  EXPECT_THROW((void)Options().initial_cells(0).to_string_map_options(),
               std::invalid_argument);
  EXPECT_THROW((void)Options().initial_cells(0).to_table_config(), std::invalid_argument);
}

TEST(OptionsBuilder, CarriesKnobsIntoMapOptions) {
  const MapOptions o = Options()
                           .initial_cells(1 << 18)
                           .group_size(128)
                           .hash_seed(7)
                           .emulate_nvm()
                           .auto_grow(false)
                           .retain_retired_regions(true)
                           .checksum_groups(false)
                           .verify_on_open(false)
                           .record_latency(false)
                           .latency_sample_shift(3)
                           .to_map_options();
  EXPECT_EQ(o.initial_cells, u64{1} << 18);
  EXPECT_EQ(o.group_size, 128u);
  EXPECT_EQ(o.hash_seed, 7u);
  EXPECT_EQ(o.flush_latency_ns, 300u);  // emulate_nvm = the paper's model
  EXPECT_FALSE(o.auto_expand);
  EXPECT_TRUE(o.retain_retired_regions);
  EXPECT_FALSE(o.checksum_groups);
  EXPECT_FALSE(o.verify_on_open);
  EXPECT_FALSE(o.record_latency);
  EXPECT_EQ(o.latency_sample_shift, 3u);
}

TEST(OptionsBuilder, CarriesKnobsIntoStringMapOptions) {
  const StringMapOptions o = Options()
                                 .initial_cells(4096)
                                 .arena_bytes_per_cell(64)
                                 .auto_grow(false)
                                 .checksum_groups(false)
                                 .to_string_map_options();
  EXPECT_EQ(o.initial_cells, 4096u);
  EXPECT_EQ(o.arena_bytes_per_cell, 64u);
  EXPECT_FALSE(o.auto_compact);
  EXPECT_FALSE(o.checksum_groups);
}

TEST(OptionsBuilder, CarriesKnobsIntoTableConfig) {
  const hash::TableConfig c = Options()
                                  .scheme(hash::Scheme::kGroup)
                                  .initial_cells(1 << 20)
                                  .wide_cells(true)
                                  .with_wal(true, 512)
                                  .second_seed(99)
                                  .to_table_config();
  EXPECT_EQ(c.scheme, hash::Scheme::kGroup);
  EXPECT_EQ(u64{1} << c.total_cells_log2, u64{1} << 20);
  EXPECT_TRUE(c.wide_cells);
  EXPECT_TRUE(c.with_wal);
  EXPECT_EQ(c.wal_records, 512u);
  EXPECT_EQ(c.seed2, 99u);
  EXPECT_TRUE(c.group_crc);  // checksum default on + group scheme
  // Non-group schemes never get group CRC.
  EXPECT_FALSE(Options().scheme(hash::Scheme::kLinear).to_table_config().group_crc);
}

TEST(OptionsBuilder, ImplicitConversionAtFactories) {
  // The whole point of the design: existing factory signatures accept an
  // Options directly, no overloads added.
  auto map = GroupHashMap::create_in_memory(
      Options().initial_cells(1 << 10).checksum_groups(false));
  map.put(1, 2);
  EXPECT_EQ(map.get(1), std::optional<u64>(2));

  auto smap = PersistentStringMap::create_in_memory(
      Options().initial_cells(512).arena_bytes_per_cell(64));
  smap.put("k", 9);
  EXPECT_EQ(smap.get("k"), std::optional<u64>(9));

  // And braced designated-init still selects the legacy aggregates.
  auto legacy = GroupHashMap::create_in_memory({.initial_cells = 1 << 10});
  legacy.put(5, 6);
  EXPECT_EQ(legacy.get(5), std::optional<u64>(6));
}

TEST(OptionsBuilder, FromLegacyRoundTrips) {
  MapOptions mo;
  mo.initial_cells = 777;  // rounded by the map itself, not the builder
  mo.group_size = 64;
  mo.record_latency = false;
  mo.latency_sample_shift = 2;
  const MapOptions back = Options::from(mo).to_map_options();
  EXPECT_EQ(back.initial_cells, mo.initial_cells);
  EXPECT_EQ(back.group_size, mo.group_size);
  EXPECT_EQ(back.record_latency, mo.record_latency);
  EXPECT_EQ(back.latency_sample_shift, mo.latency_sample_shift);

  StringMapOptions so;
  so.arena_bytes_per_cell = 96;
  so.auto_compact = false;
  const StringMapOptions sback = Options::from(so).to_string_map_options();
  EXPECT_EQ(sback.arena_bytes_per_cell, so.arena_bytes_per_cell);
  EXPECT_EQ(sback.auto_compact, so.auto_compact);

  hash::TableConfig tc;
  tc.scheme = hash::Scheme::kGroup;
  tc.total_cells_log2 = 14;
  tc.wide_cells = true;
  const hash::TableConfig tback = Options::from(tc).to_table_config();
  EXPECT_EQ(tback.scheme, tc.scheme);
  EXPECT_EQ(tback.total_cells_log2, tc.total_cells_log2);
  EXPECT_EQ(tback.wide_cells, tc.wide_cells);
}

TEST(OptionsBuilder, GettersMirrorSetters) {
  const Options o = Options().initial_cells(123).group_size(32).record_latency(false);
  EXPECT_EQ(o.initial_cells(), 123u);
  EXPECT_EQ(o.group_size(), 32u);
  EXPECT_FALSE(o.record_latency());
}

}  // namespace
}  // namespace gh
