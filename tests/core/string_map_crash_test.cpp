// Randomized crash-recovery fuzz for PersistentStringMap, mirroring
// tests/hash/crash_fuzz_test.cpp for the string layer: run a random
// op sequence against an in-process oracle, "crash" by abandoning the
// mapping without a clean shutdown, reopen through recovery, and require
// every oracle entry to survive with its last committed value.
//
// The string map commits each mutation with one 8-byte atomic store
// (arena head / cell word / record value word), so a crash between ops
// loses nothing; a crash MID-op is exercised separately by the hash-layer
// fuzz (the cell protocol is shared). Here the adversary is the dirty
// superblock: reopen must detect it, rescan, and rebuild the count.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unordered_map>

#include "core/string_map.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void run_crash_trial(u64 seed, u64 ops, const StringMapOptions& options) {
  const std::string path =
      temp_path("gh_smap_crash_" + std::to_string(seed) + ".gh");
  std::filesystem::remove(path);

  Xoshiro256 rng(seed);
  std::unordered_map<std::string, u64> oracle;
  const auto random_key = [&rng] {
    return "k" + std::to_string(rng.next_below(400));
  };

  {
    auto map = PersistentStringMap::create(path, options);
    for (u64 i = 0; i < ops; ++i) {
      const std::string key = random_key();
      switch (rng.next_below(3)) {
        case 0:
        case 1: {
          const u64 value = rng.next();
          map.put(key, value);
          oracle[key] = value;
          break;
        }
        default: {
          EXPECT_EQ(map.erase(key), oracle.erase(key) > 0) << "key " << key;
          break;
        }
      }
    }
    map.abandon();  // crash: no clean-shutdown mark
  }

  auto map = PersistentStringMap::open(path, options);
  EXPECT_TRUE(map.recovered_on_open()) << "seed " << seed;
  EXPECT_EQ(map.size(), oracle.size()) << "seed " << seed;
  for (const auto& [key, value] : oracle) {
    const auto got = map.get(key);
    ASSERT_TRUE(got.has_value()) << "seed " << seed << " key " << key;
    EXPECT_EQ(*got, value) << "seed " << seed << " key " << key;
  }
  map.close();
  std::filesystem::remove(path);
}

TEST(StringMapCrashFuzz, RandomOpsSurviveAbandonAndRecovery) {
  for (u64 seed = 1; seed <= 20; ++seed) {
    run_crash_trial(seed, /*ops=*/600, {});
  }
}

TEST(StringMapCrashFuzz, SurvivesWithCompactionsInTheMix) {
  // Tiny geometry: compactions (region replacement) happen mid-sequence,
  // and the final abandoned region is a compacted one.
  for (u64 seed = 100; seed <= 110; ++seed) {
    run_crash_trial(seed, /*ops=*/1500,
                    {.initial_cells = 64, .arena_bytes_per_cell = 32});
  }
}

TEST(StringMapCrashFuzz, AbandonedEmptyMapRecovers) {
  const std::string path = temp_path("gh_smap_crash_empty.gh");
  std::filesystem::remove(path);
  {
    auto map = PersistentStringMap::create(path, {});
    map.abandon();
  }
  auto map = PersistentStringMap::open(path);
  EXPECT_TRUE(map.recovered_on_open());
  EXPECT_EQ(map.size(), 0u);
  map.put("post-recovery", 7);
  EXPECT_EQ(*map.get("post-recovery"), 7u);
  map.close();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gh
