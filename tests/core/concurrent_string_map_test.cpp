#include "core/concurrent_string_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace gh {
namespace {

TEST(ConcurrentStringMap, SingleThreadedBasics) {
  ConcurrentStringMap map({.shards = 4});
  EXPECT_EQ(map.shard_count(), 4u);
  map.put("alpha", 1);
  map.put("beta", 2);
  EXPECT_EQ(*map.get("alpha"), 1u);
  EXPECT_EQ(*map.get("beta"), 2u);
  EXPECT_FALSE(map.get("gamma").has_value());
  map.put("alpha", 10);
  EXPECT_EQ(*map.get("alpha"), 10u);
  EXPECT_TRUE(map.erase("beta"));
  EXPECT_FALSE(map.get("beta").has_value());
  EXPECT_EQ(map.size(), 1u);
}

TEST(ConcurrentStringMap, ManyKeysAcrossShards) {
  ConcurrentStringMap map({.shards = 8});
  for (u64 k = 0; k < 4000; ++k) map.put("key-" + std::to_string(k), k);
  EXPECT_EQ(map.size(), 4000u);
  for (u64 k = 0; k < 4000; ++k) {
    EXPECT_EQ(*map.get("key-" + std::to_string(k)), k) << k;
  }
}

TEST(ConcurrentStringMap, UncontendedReadsNeverFallBack) {
  ConcurrentStringMap map({.shards = 4});
  for (u64 k = 0; k < 500; ++k) map.put("k" + std::to_string(k), k);
  for (u64 k = 0; k < 500; ++k) EXPECT_EQ(*map.get("k" + std::to_string(k)), k);
  EXPECT_EQ(map.contention().read_retries.load(), 0u);
  EXPECT_EQ(map.contention().read_fallbacks.load(), 0u);
}

TEST(ConcurrentStringMap, OversizedKeysReadThroughLock) {
  ConcurrentStringMap map({.shards = 2});
  const std::string big(ConcurrentStringMap::kMaxOptimisticKeyBytes + 1, 'x');
  map.put(big, 42);
  EXPECT_EQ(*map.get(big), 42u);
}

TEST(ConcurrentStringMap, PessimisticMode) {
  ConcurrentStringMap map({.shards = 4, .lock_mode = LockMode::kPessimistic});
  EXPECT_EQ(map.lock_mode(), LockMode::kPessimistic);
  map.put("a", 1);
  EXPECT_EQ(*map.get("a"), 1u);
  EXPECT_EQ(map.contention().read_fallbacks.load(), 0u);
}

TEST(ConcurrentStringMap, StarvationFallbackWithZeroAttempts) {
  ConcurrentStringMap map({.shards = 2});
  map.set_max_optimistic_attempts(0);
  map.put("a", 1);
  EXPECT_EQ(*map.get("a"), 1u);
  EXPECT_FALSE(map.get("missing").has_value());
  EXPECT_EQ(map.contention().read_fallbacks.load(), 2u);
}

TEST(ConcurrentStringMap, ParallelDisjointWriters) {
  ConcurrentStringMap map({.shards = 8});
  constexpr int kThreads = 4;
  constexpr u64 kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (u64 i = 0; i < kPerThread; ++i) {
        map.put("t" + std::to_string(t) + "-" + std::to_string(i), i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (u64 i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(*map.get("t" + std::to_string(t) + "-" + std::to_string(i)), i);
    }
  }
}

TEST(ConcurrentStringMap, ReadsSurviveCompaction) {
  // Small shards + sustained inserts force compactions (which move the
  // arena AND the table) while a reader hammers established keys. The
  // retired regions stay mapped, so stale probes are harmless and are
  // discarded by validation.
  ConcurrentStringMap map(
      {.shards = 2, .shard_options = {.initial_cells = 256, .arena_bytes_per_cell = 32}});
  for (u64 k = 0; k < 100; ++k) map.put("stable-" + std::to_string(k), k * 11);
  std::atomic<bool> stop{false};
  std::atomic<u64> bad{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (u64 k = 0; k < 100; ++k) {
        const auto v = map.get("stable-" + std::to_string(k));
        if (!v.has_value() || *v != k * 11) bad.fetch_add(1);
      }
    }
  });
  for (u64 k = 0; k < 8000; ++k) {
    map.put("filler-" + std::to_string(k), k);
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(map.size(), 100u + 8000u);
  for (u64 k = 0; k < 8000; ++k) {
    ASSERT_EQ(*map.get("filler-" + std::to_string(k)), k) << k;
  }
}

}  // namespace
}  // namespace gh
