// Batched multi-op API — the PR-6 test gate.
//
// Four claims are under test, each with its own section:
//
//   1. Differential equivalence: every *_batch entry point produces
//      byte-identical results to the scalar loop it replaces, across
//      random op mixes, duplicate keys inside one batch, batch sizes
//      1..257, auto-expansion, fixed-capacity exhaustion and string-map
//      compaction. The oracle is a second map driven scalar plus a
//      std::unordered_map.
//   2. SIMD/scalar equivalence: forcing the tag-probe dispatch to every
//      supported level (hash::force_simd_level) changes nothing
//      observable. Under GH_NO_SIMD only the scalar level exists and the
//      same assertions run.
//   3. Observability: get_batch issues software prefetches on EVERY
//      build (including GH_NO_SIMD — prefetching is independent of the
//      sweep instruction set), visible as stats counters.
//   4. Tag coherence: the DRAM fingerprint array matches a full cell
//      rescan (GroupHashTable::verify_tags) after every mutation phase,
//      expansion, scrub, recovery — and after reopening a crash image
//      taken at EVERY persistence event of a mixed scalar+batched
//      workload, under random cacheline eviction.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/concurrent_map.hpp"
#include "core/concurrent_string_map.hpp"
#include "core/concurrent_table.hpp"
#include "core/group_hash_map.hpp"
#include "core/string_map.hpp"
#include "hash/any_table.hpp"
#include "hash/cells.hpp"
#include "hash/tag_probe.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"
#include "util/rng.hpp"

namespace gh {
namespace {

/// Cell16 keys: bit 63 must be clear (bitmap bit), zero is reserved.
u64 make_key(Xoshiro256& rng) { return (rng.next() >> 1) | 1; }

// ---------------------------------------------------------------------------
// Deterministic batch semantics
// ---------------------------------------------------------------------------

TEST(Batch, GetBatchMatchesScalarGet) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 12});
  Xoshiro256 rng(1);
  std::vector<u64> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(make_key(rng));
    map.put(keys.back(), keys.back() ^ 0xabcd);
  }
  // Mix of hits and misses, shuffled.
  std::vector<u64> probes = keys;
  for (int i = 0; i < 1000; ++i) probes.push_back(make_key(rng));
  for (usize i = probes.size() - 1; i > 0; --i) {
    std::swap(probes[i], probes[rng.next_below(i + 1)]);
  }
  std::vector<std::optional<u64>> out(probes.size());
  map.get_batch(probes, out);
  for (usize i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(out[i], map.get(probes[i])) << "i=" << i;
  }
}

TEST(Batch, PutBatchDuplicateKeysLastWins) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 10});
  // 100 writes to 3 keys in one batch — crosses the 32-key fence window,
  // so dups hit both the staged-in-window path and the committed-in-an-
  // earlier-window (update) path.
  std::vector<u64> keys, values;
  for (u64 i = 0; i < 100; ++i) {
    keys.push_back(1 + (i % 3));
    values.push_back(1000 + i);
  }
  map.put_batch(keys, values);
  EXPECT_EQ(map.size(), 3u);
  // Last write per key: i=99 -> key 1, i=98 -> key 3, i=97 -> key 2.
  EXPECT_EQ(map.get(1), std::optional<u64>(1000 + 99));
  EXPECT_EQ(map.get(2), std::optional<u64>(1000 + 97));
  EXPECT_EQ(map.get(3), std::optional<u64>(1000 + 98));
  EXPECT_TRUE(map.raw_table().verify_tags());
}

TEST(Batch, EraseBatchDuplicatesBehaveSequentially) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 10});
  map.put(10, 1);
  map.put(20, 2);
  const std::vector<u64> keys{10, 10, 30, 20, 20};
  std::vector<u8> hits(keys.size(), 0xee);
  map.erase_batch(keys, hits);
  EXPECT_EQ(hits, (std::vector<u8>{1, 0, 0, 1, 0}));
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.raw_table().verify_tags());
}

TEST(Batch, EmptyAndSingletonBatches) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 10});
  map.put_batch({}, {});
  map.get_batch({}, {});
  map.erase_batch({});
  EXPECT_EQ(map.size(), 0u);
  const u64 k = 42;
  const u64 v = 7;
  map.put_batch(std::span(&k, 1), std::span(&v, 1));
  std::optional<u64> out;
  map.get_batch(std::span(&k, 1), std::span(&out, 1));
  EXPECT_EQ(out, std::optional<u64>(7));
  u8 hit = 0;
  map.erase_batch(std::span(&k, 1), std::span(&hit, 1));
  EXPECT_EQ(hit, 1);
  EXPECT_EQ(map.size(), 0u);
}

// ---------------------------------------------------------------------------
// Observability: prefetches and batch counters advance on every build
// ---------------------------------------------------------------------------

TEST(Batch, PrefetchAndBatchCountersAdvance) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 12});
  Xoshiro256 rng(2);
  std::vector<u64> keys(512);
  for (u64& k : keys) k = make_key(rng);
  std::vector<u64> values(keys.size(), 1);
  map.put_batch(keys, values);

  const auto before = map.snapshot();
  std::vector<std::optional<u64>> out(keys.size());
  map.get_batch(keys, out);
  const auto after = map.snapshot();

  // get_batch prefetches each key's level-1 cell line — at least one per
  // key, MORE with the level-2 tag lines. This must hold under GH_NO_SIMD
  // too: prefetching is the batching win, independent of the sweep ISA.
  EXPECT_GE(after.table.prefetches_issued - before.table.prefetches_issued, keys.size());
  EXPECT_EQ(after.table.batch_ops - before.table.batch_ops, 1u);
  EXPECT_EQ(after.table.batch_keys - before.table.batch_keys, keys.size());

  // Negative lookups drive the tag filter: most cells are skipped without
  // a key compare.
  std::vector<u64> misses(512);
  for (u64& k : misses) k = make_key(rng);
  map.get_batch(misses, out);
  const auto miss_stats = map.snapshot();
  EXPECT_GT(miss_stats.table.tag_skips, after.table.tag_skips);
}

// ---------------------------------------------------------------------------
// Differential fuzz: batch APIs vs scalar oracle
// ---------------------------------------------------------------------------

class BatchFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(BatchFuzz, MixedOpsMatchScalarOracle) {
  const u64 seed = GetParam();
  // Small groups + small table force level-2 pressure and expansions.
  const MapOptions opts{.initial_cells = 1 << 10, .group_size = 64};
  auto batch_map = GroupHashMap::create_in_memory(opts);
  auto scalar_map = GroupHashMap::create_in_memory(opts);
  std::unordered_map<u64, u64> oracle;

  Xoshiro256 rng(seed);
  std::vector<u64> universe(512);
  for (u64& k : universe) k = make_key(rng);

  for (int round = 0; round < 40; ++round) {
    const usize n = 1 + static_cast<usize>(rng.next_below(257));
    std::vector<u64> keys(n);
    for (u64& k : keys) k = universe[rng.next_below(universe.size())];
    switch (rng.next_below(3)) {
      case 0: {  // put
        std::vector<u64> values(n);
        for (u64& v : values) v = rng.next();
        batch_map.put_batch(keys, values);
        for (usize i = 0; i < n; ++i) {
          scalar_map.put(keys[i], values[i]);
          oracle[keys[i]] = values[i];
        }
        break;
      }
      case 1: {  // get
        std::vector<std::optional<u64>> out(n);
        batch_map.get_batch(keys, out);
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], scalar_map.get(keys[i])) << "round " << round << " i " << i;
          const auto it = oracle.find(keys[i]);
          ASSERT_EQ(out[i], it == oracle.end() ? std::nullopt : std::optional<u64>(it->second));
        }
        break;
      }
      case 2: {  // erase
        std::vector<u8> hits(n, 0xee);
        batch_map.erase_batch(keys, hits);
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i] != 0, scalar_map.erase(keys[i])) << "round " << round << " i " << i;
          ASSERT_EQ(hits[i] != 0, oracle.erase(keys[i]) > 0);
        }
        break;
      }
    }
    ASSERT_EQ(batch_map.size(), scalar_map.size()) << "round " << round;
    ASSERT_EQ(batch_map.size(), oracle.size()) << "round " << round;
  }

  // Full-content comparison and the tag invariant on both maps.
  batch_map.for_each([&](u64 k, u64 v) {
    const auto it = oracle.find(k);
    ASSERT_NE(it, oracle.end()) << k;
    EXPECT_EQ(it->second, v) << k;
  });
  EXPECT_TRUE(batch_map.raw_table().verify_tags());
  EXPECT_TRUE(scalar_map.raw_table().verify_tags());
}

TEST_P(BatchFuzz, FixedCapacityExhaustsAtSamePrefix) {
  const u64 seed = GetParam();
  const MapOptions opts{
      .initial_cells = 256, .group_size = 64, .auto_expand = false};
  auto batch_map = GroupHashMap::create_in_memory(opts);
  auto scalar_map = GroupHashMap::create_in_memory(opts);

  Xoshiro256 rng(seed * 31 + 7);
  bool batch_threw = false;
  bool scalar_threw = false;
  for (int round = 0; round < 64 && !batch_threw; ++round) {
    const usize n = 1 + static_cast<usize>(rng.next_below(64));
    std::vector<u64> keys(n), values(n);
    for (usize i = 0; i < n; ++i) {
      keys[i] = make_key(rng);
      values[i] = rng.next();
    }
    try {
      batch_map.put_batch(keys, values);
    } catch (const std::runtime_error&) {
      batch_threw = true;
    }
    try {
      for (usize i = 0; i < n; ++i) scalar_map.put(keys[i], values[i]);
    } catch (const std::runtime_error&) {
      scalar_threw = true;
    }
    // Strict in-order semantics: both stop at the SAME failing key, so
    // the durable prefixes are identical.
    ASSERT_EQ(batch_threw, scalar_threw) << "round " << round;
    ASSERT_EQ(batch_map.size(), scalar_map.size()) << "round " << round;
  }
  ASSERT_TRUE(batch_threw) << "capacity never exhausted — test ineffective";
  batch_map.for_each([&](u64 k, u64 v) {
    EXPECT_EQ(scalar_map.get(k), std::optional<u64>(v)) << k;
  });
  EXPECT_TRUE(batch_map.raw_table().verify_tags());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchFuzz, ::testing::Range<u64>(1, 9));

// ---------------------------------------------------------------------------
// String map: batched ops over the record arena (with compaction)
// ---------------------------------------------------------------------------

TEST(StringBatch, DuplicateKeysAndUpdatesInOneBatch) {
  auto map = PersistentStringMap::create_in_memory({.initial_cells = 1 << 10});
  map.put("pre", 1);
  const std::vector<std::string_view> keys{"a", "b", "a", "pre", "a"};
  const std::vector<u64> values{10, 20, 11, 2, 12};
  map.put_batch(keys, values);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.get("a"), std::optional<u64>(12));
  EXPECT_EQ(map.get("b"), std::optional<u64>(20));
  EXPECT_EQ(map.get("pre"), std::optional<u64>(2));

  std::vector<std::optional<u64>> out(4);
  const std::vector<std::string_view> probes{"a", "missing", "b", "pre"};
  map.get_batch(probes, out);
  EXPECT_EQ(out[0], std::optional<u64>(12));
  EXPECT_EQ(out[1], std::nullopt);
  EXPECT_EQ(out[2], std::optional<u64>(20));
  EXPECT_EQ(out[3], std::optional<u64>(2));

  std::vector<u8> hits(3, 0xee);
  map.erase_batch(std::vector<std::string_view>{"a", "a", "b"}, hits);
  EXPECT_EQ(hits, (std::vector<u8>{1, 0, 1}));
  EXPECT_EQ(map.size(), 1u);
}

class StringBatchFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(StringBatchFuzz, MixedOpsMatchScalarOracle) {
  // Tiny table + arena so put_batch regularly crosses compactions and
  // growth rebuilds mid-run (the re-apply-unconsumed-records path).
  const StringMapOptions opts{.initial_cells = 256, .group_size = 64};
  auto batch_map = PersistentStringMap::create_in_memory(opts);
  auto scalar_map = PersistentStringMap::create_in_memory(opts);

  Xoshiro256 rng(GetParam() * 977 + 3);
  std::vector<std::string> universe;
  for (int i = 0; i < 400; ++i) {
    std::string k = "key-" + std::to_string(i);
    if (i % 17 == 0) k += std::string(40, 'x');  // some long keys
    universe.push_back(std::move(k));
  }

  for (int round = 0; round < 25; ++round) {
    const usize n = 1 + static_cast<usize>(rng.next_below(129));
    std::vector<std::string_view> keys(n);
    for (auto& k : keys) k = universe[rng.next_below(universe.size())];
    switch (rng.next_below(3)) {
      case 0: {
        std::vector<u64> values(n);
        for (u64& v : values) v = rng.next();
        batch_map.put_batch(keys, values);
        for (usize i = 0; i < n; ++i) scalar_map.put(keys[i], values[i]);
        break;
      }
      case 1: {
        std::vector<std::optional<u64>> out(n);
        batch_map.get_batch(keys, out);
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], scalar_map.get(keys[i])) << "round " << round << " i " << i;
        }
        break;
      }
      case 2: {
        std::vector<u8> hits(n, 0xee);
        batch_map.erase_batch(keys, hits);
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i] != 0, scalar_map.erase(keys[i])) << "round " << round << " i " << i;
        }
        break;
      }
    }
    ASSERT_EQ(batch_map.size(), scalar_map.size()) << "round " << round;
  }
  EXPECT_TRUE(batch_map.debug_verify_tags());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringBatchFuzz, ::testing::Range<u64>(1, 5));

// ---------------------------------------------------------------------------
// SIMD dispatch equivalence
// ---------------------------------------------------------------------------

/// Restores the dispatch cap even when an assertion fails mid-test.
struct SimdCapGuard {
  ~SimdCapGuard() { hash::force_simd_level(hash::SimdLevel::kAvx2); }
};

TEST(SimdEquivalence, EveryLevelAgreesOnLookupsAndMutations) {
  SimdCapGuard guard;
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1 << 13, .group_size = 64});
  Xoshiro256 rng(11);
  std::vector<u64> keys(3000), misses(1000);
  for (u64& k : keys) k = make_key(rng);
  for (u64& k : misses) k = make_key(rng);
  for (const u64 k : keys) map.put(k, k * 3);

  // Baseline: the portable scalar sweep.
  hash::force_simd_level(hash::SimdLevel::kScalar);
  ASSERT_EQ(hash::active_simd_level(), hash::SimdLevel::kScalar);
  std::vector<std::optional<u64>> baseline(keys.size()), miss_base(misses.size());
  map.get_batch(keys, baseline);
  map.get_batch(misses, miss_base);
  ASSERT_TRUE(map.raw_table().verify_tags());

  for (const auto level : {hash::SimdLevel::kSse2, hash::SimdLevel::kAvx2}) {
    if (static_cast<int>(level) > static_cast<int>(hash::detected_simd_level())) continue;
    hash::force_simd_level(level);
    ASSERT_EQ(hash::active_simd_level(), level);
    std::vector<std::optional<u64>> out(keys.size());
    map.get_batch(keys, out);
    EXPECT_EQ(out, baseline) << "level " << static_cast<int>(level);
    for (usize i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(map.get(keys[i]), baseline[i]) << "level " << static_cast<int>(level);
    }
    std::vector<std::optional<u64>> mout(misses.size());
    map.get_batch(misses, mout);
    EXPECT_EQ(mout, miss_base) << "level " << static_cast<int>(level);
    EXPECT_TRUE(map.raw_table().verify_tags());
  }

  // Mutate under the scalar sweep, read back under the widest one — the
  // tag array is ISA-independent state.
  hash::force_simd_level(hash::SimdLevel::kScalar);
  for (usize i = 0; i < keys.size(); i += 2) map.erase(keys[i]);
  hash::force_simd_level(hash::SimdLevel::kAvx2);
  for (usize i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(map.get(keys[i]).has_value(), i % 2 == 1) << i;
  }
  EXPECT_TRUE(map.raw_table().verify_tags());
}

// The in-cell 16-bit tag filter (Cell32's commit word, second stage behind
// the DRAM byte-tag sweep) against a plain scalar reference, at every
// dispatch level the machine supports. Under GH_NO_SIMD only kScalar
// exists and the reference check still gates the portable leg.
TEST(SimdEquivalence, InCellTagFilterMatchesScalarReference) {
  SimdCapGuard guard;
  constexpr u32 kStrideWords = sizeof(hash::Cell32) / sizeof(u64);
  Xoshiro256 rng(29);
  for (int round = 0; round < 200; ++round) {
    // Simulated group: 256 cells; commit words drawn from a tiny alphabet
    // so expect-collisions are common.
    std::vector<u64> words(256 * kStrideWords);
    for (u64& w : words) w = rng.next();
    const u64 expect = hash::Cell32::kOccupiedBit | (rng.next() & 0xffff);
    for (usize c = 0; c < 256; ++c) {
      if (rng.next_below(3) == 0) words[c * kStrideWords] = expect;
    }
    // Random candidate list (sorted unique positions, like a byte-tag sweep
    // output), sized to cross the 4-wide AVX2 and 2-wide SSE2 loops.
    std::vector<u32> cand;
    for (u32 i = 0; i < 256; ++i) {
      if (rng.next_below(4) == 0) cand.push_back(i);
    }
    std::vector<u32> want;
    for (const u32 i : cand) {
      if (words[static_cast<u64>(i) * kStrideWords] == expect) want.push_back(i);
    }
    for (const auto level :
         {hash::SimdLevel::kScalar, hash::SimdLevel::kSse2, hash::SimdLevel::kAvx2}) {
      if (static_cast<int>(level) > static_cast<int>(hash::detected_simd_level())) continue;
      hash::force_simd_level(level);
      std::vector<u32> idxs = cand;
      const u32 kept = hash::filter_in_cell_tags(words.data(), kStrideWords, idxs.data(),
                                                 static_cast<u32>(idxs.size()), expect);
      idxs.resize(kept);
      ASSERT_EQ(idxs, want) << "round " << round << " level " << static_cast<int>(level);
    }
  }
}

// Same shape as EveryLevelAgreesOnLookupsAndMutations but over the string
// map, whose Cell32 probe path runs byte-tag sweep -> in-cell 16-bit tag
// filter -> key compare. A small group and many keys force multi-candidate
// groups so the filter actually rejects.
TEST(SimdEquivalence, StringMapInCellTagEveryLevelAgrees) {
  SimdCapGuard guard;
  auto map = PersistentStringMap::create_in_memory({.initial_cells = 1 << 12, .group_size = 64});
  std::vector<std::string> keys, misses;
  for (int i = 0; i < 2000; ++i) keys.push_back("k" + std::to_string(i));
  for (int i = 0; i < 800; ++i) misses.push_back("m" + std::to_string(i));
  for (usize i = 0; i < keys.size(); ++i) map.put(keys[i], i * 7 + 1);

  hash::force_simd_level(hash::SimdLevel::kScalar);
  std::vector<std::optional<u64>> baseline(keys.size()), miss_base(misses.size());
  std::vector<std::string_view> key_views(keys.begin(), keys.end());
  std::vector<std::string_view> miss_views(misses.begin(), misses.end());
  map.get_batch(key_views, baseline);
  map.get_batch(miss_views, miss_base);
  for (usize i = 0; i < keys.size(); ++i) ASSERT_EQ(baseline[i], std::optional<u64>(i * 7 + 1));

  for (const auto level : {hash::SimdLevel::kSse2, hash::SimdLevel::kAvx2}) {
    if (static_cast<int>(level) > static_cast<int>(hash::detected_simd_level())) continue;
    hash::force_simd_level(level);
    std::vector<std::optional<u64>> out(keys.size()), mout(misses.size());
    map.get_batch(key_views, out);
    map.get_batch(miss_views, mout);
    EXPECT_EQ(out, baseline) << "level " << static_cast<int>(level);
    EXPECT_EQ(mout, miss_base) << "level " << static_cast<int>(level);
    for (usize i = 0; i < keys.size(); i += 97) {
      ASSERT_EQ(map.get(keys[i]), baseline[i]) << "level " << static_cast<int>(level);
    }
  }

  // Erase under scalar, verify under the widest available level.
  hash::force_simd_level(hash::SimdLevel::kScalar);
  for (usize i = 0; i < keys.size(); i += 2) ASSERT_TRUE(map.erase(keys[i]));
  hash::force_simd_level(hash::SimdLevel::kAvx2);
  for (usize i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(map.get(keys[i]).has_value(), i % 2 == 1) << i;
  }
  EXPECT_TRUE(map.debug_verify_tags());
}

// ---------------------------------------------------------------------------
// Tag coherence through the map lifecycle
// ---------------------------------------------------------------------------

TEST(Tags, CoherentThroughOpsExpansionScrubAndRecovery) {
  auto map = GroupHashMap::create_in_memory(
      {.initial_cells = 256, .group_size = 64, .checksum_groups = true});
  Xoshiro256 rng(17);
  std::vector<u64> keys(2000);
  for (u64& k : keys) k = make_key(rng);

  // Inserts force several expansion rebuilds (256 cells -> thousands).
  const u64 expansions0 = map.snapshot().lifecycle.expansions;
  std::vector<u64> values(keys.size(), 5);
  map.put_batch(keys, values);
  EXPECT_GT(map.snapshot().lifecycle.expansions, expansions0);
  ASSERT_TRUE(map.raw_table().verify_tags()) << "after batched inserts + expansion";

  for (usize i = 0; i < keys.size(); i += 2) map.erase(keys[i]);
  ASSERT_TRUE(map.raw_table().verify_tags()) << "after erases";

  for (usize i = 1; i < keys.size(); i += 2) map.put(keys[i], 6);
  ASSERT_TRUE(map.raw_table().verify_tags()) << "after updates";

  const auto scrubbed = map.scrub();
  EXPECT_EQ(scrubbed.crc_mismatches, 0u);
  ASSERT_TRUE(map.raw_table().verify_tags()) << "after scrub";

  map.recover_now();
  ASSERT_TRUE(map.raw_table().verify_tags()) << "after recovery";
  for (usize i = 1; i < keys.size(); i += 2) {
    ASSERT_EQ(map.get(keys[i]), std::optional<u64>(6));
  }
}

// ---------------------------------------------------------------------------
// AnyTable dispatch: native batch vs the base-class scalar fallback
// ---------------------------------------------------------------------------

class AnyTableBatch : public ::testing::TestWithParam<std::tuple<hash::Scheme, bool>> {};

TEST_P(AnyTableBatch, BatchEntryPointsMatchScalarSemantics) {
  const auto [scheme, wide] = GetParam();
  hash::TableConfig cfg;
  cfg.scheme = scheme;
  cfg.total_cells_log2 = 12;
  cfg.wide_cells = wide;
  nvm::DirectPM pm(nvm::PersistConfig::counting_only());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table = hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)),
                                cfg, /*format=*/true);
  ASSERT_NE(table, nullptr);

  // 600 distinct keys: larger than the adapter's 256-key narrowing chunk,
  // so narrow tables cross chunk boundaries.
  std::vector<Key128> keys;
  std::vector<u64> values;
  for (u64 i = 1; i <= 600; ++i) {
    keys.push_back(Key128{i * 977, wide ? i * 31 : 0});
    values.push_back(i);
  }
  const usize inserted = table->insert_batch(keys, values);
  ASSERT_EQ(inserted, keys.size()) << table->name() << " at ~7% load";
  EXPECT_EQ(table->count(), keys.size());

  std::vector<std::optional<u64>> out(keys.size());
  table->find_batch(keys, out);
  for (usize i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(out[i], table->find(keys[i])) << table->name() << " i=" << i;
    ASSERT_EQ(out[i], std::optional<u64>(values[i]));
  }

  // Erase with duplicates: sequential semantics through either path.
  std::vector<Key128> doomed{keys[0], keys[0], keys[1],
                                   Key128{~0ull >> 2, 0}};
  std::vector<u8> hits(doomed.size(), 0xee);
  table->erase_batch(doomed, hits);
  EXPECT_EQ(hits, (std::vector<u8>{1, 0, 1, 0})) << table->name();
  EXPECT_EQ(table->count(), keys.size() - 2);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AnyTableBatch,
    ::testing::Combine(::testing::Values(hash::Scheme::kGroup, hash::Scheme::kLinear,
                                         hash::Scheme::kLevel),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = hash::scheme_name(std::get<0>(info.param));
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + (std::get<1>(info.param) ? "_wide" : "_narrow");
    });

// ---------------------------------------------------------------------------
// Concurrent wrappers (single-threaded semantics; races are covered by the
// concurrency-label torture suites)
// ---------------------------------------------------------------------------

TEST(ConcurrentBatch, ShardedMapMatchesScalar) {
  ConcurrentGroupHashMap cmap(/*shards=*/4, {.initial_cells = 1 << 12});
  Xoshiro256 rng(23);
  std::vector<u64> keys(3000), values(3000);
  for (usize i = 0; i < keys.size(); ++i) {
    keys[i] = make_key(rng);
    values[i] = rng.next();
  }
  cmap.put_batch(keys, values);
  EXPECT_EQ(cmap.size(), keys.size());

  std::vector<u64> probes = keys;
  for (int i = 0; i < 1000; ++i) probes.push_back(make_key(rng));
  std::vector<std::optional<u64>> out(probes.size());
  cmap.get_batch(probes, out);
  for (usize i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i], cmap.get(probes[i])) << i;
  }

  std::vector<u64> doomed(keys.begin(), keys.begin() + 1500);
  doomed.push_back(keys[0]);  // already-erased duplicate -> miss
  std::vector<u8> hits(doomed.size(), 0xee);
  cmap.erase_batch(doomed, hits);
  for (usize i = 0; i < 1500; ++i) ASSERT_EQ(hits[i], 1) << i;
  EXPECT_EQ(hits.back(), 0);
  EXPECT_EQ(cmap.size(), keys.size() - 1500);
}

// Scatter-back audit regression: the sharded wrapper buckets caller
// indices by shard, runs one sub-batch per shard, and scatters results
// back — results must land in caller order with the single-shard maps'
// sequential last-wins semantics, for duplicate-heavy batches and for
// both the populated and the empty `hits` span. Differential against a
// twin map driven by the scalar loop, on BOTH read legs (optimistic
// sub-batch and attempt-budget-0 lock fallback).
TEST(ConcurrentBatch, ScatterBackMatchesScalarLoopUnderDuplicates) {
  for (const u32 attempts : {ConcurrentGroupHashMap::kMaxOptimisticAttempts, 0u}) {
    ConcurrentGroupHashMap batch_map(/*shards=*/4, {.initial_cells = 1 << 10});
    ConcurrentGroupHashMap scalar_map(/*shards=*/4, {.initial_cells = 1 << 10});
    batch_map.set_max_optimistic_attempts(attempts);
    Xoshiro256 rng(31 + attempts);
    // A tiny key universe makes every batch duplicate-heavy.
    std::vector<u64> universe(37);
    for (u64& k : universe) k = make_key(rng);
    for (int round = 0; round < 80; ++round) {
      const usize n = 1 + static_cast<usize>(rng.next_below(97));
      std::vector<u64> keys(n);
      for (u64& k : keys) k = universe[rng.next_below(universe.size())];
      switch (rng.next_below(4)) {
        case 0: {  // put_batch vs scalar puts: last occurrence must win
          std::vector<u64> values(n);
          for (u64& v : values) v = rng.next();
          batch_map.put_batch(keys, values);
          for (usize i = 0; i < n; ++i) scalar_map.put(keys[i], values[i]);
          break;
        }
        case 1: {  // get_batch vs scalar gets: caller-order scatter-back
          std::vector<std::optional<u64>> out(n, std::optional<u64>(0xdead));
          batch_map.get_batch(keys, out);
          for (usize i = 0; i < n; ++i) {
            ASSERT_EQ(out[i], scalar_map.get(keys[i])) << "round " << round << " i " << i;
          }
          break;
        }
        case 2: {  // erase_batch hits: per-occurrence sequential semantics
          std::vector<u8> hits(n, 0xee);
          batch_map.erase_batch(keys, hits);
          for (usize i = 0; i < n; ++i) {
            ASSERT_EQ(hits[i] != 0, scalar_map.erase(keys[i]))
                << "round " << round << " i " << i;
          }
          break;
        }
        case 3: {  // erase_batch with an EMPTY hits span
          batch_map.erase_batch(keys);
          for (usize i = 0; i < n; ++i) scalar_map.erase(keys[i]);
          break;
        }
      }
      ASSERT_EQ(batch_map.size(), scalar_map.size()) << "round " << round;
    }
    std::vector<std::optional<u64>> got(universe.size());
    batch_map.get_batch(universe, got);
    for (usize i = 0; i < universe.size(); ++i) {
      ASSERT_EQ(got[i], scalar_map.get(universe[i])) << "attempts " << attempts << " i " << i;
    }
  }
}

// The same scatter-back contract over 32-byte cells (Key128), which also
// routes the concurrent probes through the in-cell 16-bit tag filter.
TEST(ConcurrentBatch, WideCellScatterBackMatchesScalarLoop) {
  ConcurrentGroupHashMapWide batch_map(/*shards=*/4, {.initial_cells = 1 << 10});
  ConcurrentGroupHashMapWide scalar_map(/*shards=*/4, {.initial_cells = 1 << 10});
  Xoshiro256 rng(41);
  std::vector<Key128> universe(29);
  for (Key128& k : universe) k = Key128{rng.next() | 1, rng.next()};
  for (int round = 0; round < 40; ++round) {
    const usize n = 1 + static_cast<usize>(rng.next_below(65));
    std::vector<Key128> keys(n);
    for (Key128& k : keys) k = universe[rng.next_below(universe.size())];
    if (round % 3 == 0) {
      std::vector<u64> values(n);
      for (u64& v : values) v = rng.next();
      batch_map.put_batch(keys, values);
      for (usize i = 0; i < n; ++i) scalar_map.put(keys[i], values[i]);
    } else if (round % 3 == 1) {
      std::vector<std::optional<u64>> out(n);
      batch_map.get_batch(keys, out);
      for (usize i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], scalar_map.get(keys[i])) << "round " << round << " i " << i;
      }
    } else {
      std::vector<u8> hits(n, 0xee);
      batch_map.erase_batch(keys, hits);
      for (usize i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i] != 0, scalar_map.erase(keys[i])) << "round " << round << " i " << i;
      }
    }
    ASSERT_EQ(batch_map.size(), scalar_map.size()) << "round " << round;
  }
}

TEST(ConcurrentBatch, StripedTableFindBatchMatchesFind) {
  ConcurrentGroupHashTable t({.total_cells = 1 << 14, .group_size = 64});
  Xoshiro256 rng(29);
  std::vector<u64> keys(2000);
  for (u64& k : keys) k = make_key(rng);
  for (const u64 k : keys) t.put(k, k + 1);
  std::vector<u64> probes = keys;
  for (int i = 0; i < 500; ++i) probes.push_back(make_key(rng));
  std::vector<std::optional<u64>> out(probes.size());
  t.find_batch(probes, out);
  for (usize i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i], t.find(probes[i])) << i;
  }
}

TEST(ConcurrentBatch, StringMapGetBatchMatchesGet) {
  ConcurrentStringMap map({.shards = 4});
  for (u64 k = 0; k < 800; ++k) map.put("key-" + std::to_string(k), k);
  std::vector<std::string> storage;
  for (u64 k = 0; k < 1000; ++k) storage.push_back("key-" + std::to_string(k));
  storage.push_back(std::string(300, 'z'));  // oversized -> locked path
  std::vector<std::string_view> probes(storage.begin(), storage.end());
  std::vector<std::optional<u64>> out(probes.size());
  map.get_batch(probes, out);
  for (usize i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i], map.get(probes[i])) << probes[i];
  }
}

// ---------------------------------------------------------------------------
// Crash coherence: tags rebuilt from a crash image match a full rescan
// ---------------------------------------------------------------------------

class TagCrash : public ::testing::Test {
 protected:
  using Table = hash::GroupHashTable<hash::Cell16, nvm::ShadowPM>;

  static constexpr hash::GroupHashTable<hash::Cell16, nvm::ShadowPM>::Params kParams{
      .level_cells = 64, .group_size = 16, .zero_memory = true};

  /// Mixed scalar + batched workload. Throws SimulatedCrash when the PM
  /// crash trigger fires mid-script.
  static void run_script(Table& t) {
    std::vector<u64> keys, values;
    for (u64 i = 1; i <= 40; ++i) {
      keys.push_back(i * 0x9e3779b97f4a7c15ull >> 1 | 1);
      values.push_back(i);
    }
    // Scalar warm-up, then batched upsert (covers both windows of 32),
    // scalar + batched erase, and batched re-insert over the holes.
    for (usize i = 0; i < 8; ++i) t.insert(keys[i], values[i]);
    t.upsert_batch(std::span(keys).subspan(8), std::span(values).subspan(8));
    t.erase(keys[0]);
    t.erase_batch(std::span(keys).subspan(1, 11), {});
    t.upsert_batch(std::span(keys).first(6), std::span(values).first(6));
  }

  static bool tags_match_after_reopen(nvm::ShadowPM& pm, std::span<std::byte> mem,
                                      bool recover) {
    Table reopened = Table::attach(pm, mem);
    // attach() alone must already rebuild the DRAM tags from the cells...
    if (!reopened.verify_tags()) return false;
    // ...and recovery (which scrubs torn payloads) must keep them in sync.
    if (recover) {
      reopened.recover();
      if (!reopened.verify_tags()) return false;
    }
    return true;
  }
};

TEST_F(TagCrash, ReopenRebuildsTagsAtEveryCrashPoint) {
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(Table::required_bytes(kParams));
  const std::span<std::byte> mem = region.bytes().first(Table::required_bytes(kParams));
  nvm::ShadowPM pm(mem);

  // Dry run to learn the event horizon. Formatting emits events too, and
  // every crash run re-formats — so count only the script's own events.
  u64 script_events = 0;
  {
    Table t(pm, mem, kParams, /*format=*/true);
    const u64 base = pm.event_count();
    run_script(t);
    script_events = pm.event_count() - base;
  }
  ASSERT_GT(script_events, 100u) << "script too small to be interesting";

  for (u64 crash_at = 1; crash_at < script_events; ++crash_at) {
    pm.crash_at_event(nvm::ShadowPM::no_crash());
    Table t(pm, mem, kParams, /*format=*/true);
    pm.crash_at_event(pm.event_count() + crash_at);
    bool crashed = false;
    try {
      run_script(t);
    } catch (const nvm::SimulatedCrash&) {
      crashed = true;
    }
    pm.crash_at_event(nvm::ShadowPM::no_crash());
    ASSERT_TRUE(crashed) << "crash_at " << crash_at;

    // The fence-honest image: only explicitly persisted data survives.
    const auto image = pm.materialize_crash_image(nvm::CrashMode::kNothingEvicted, 0);
    pm.reset_to_image(image);
    ASSERT_TRUE(tags_match_after_reopen(pm, mem, /*recover=*/true))
        << "crash_at " << crash_at;
  }
}

TEST_F(TagCrash, ReopenRebuildsTagsUnderRandomEviction) {
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(Table::required_bytes(kParams));
  const std::span<std::byte> mem = region.bytes().first(Table::required_bytes(kParams));
  nvm::ShadowPM pm(mem);
  u64 script_events = 0;
  {
    Table t(pm, mem, kParams, /*format=*/true);
    const u64 base = pm.event_count();
    run_script(t);
    script_events = pm.event_count() - base;
  }

  Xoshiro256 rng(41);
  for (int trial = 0; trial < 60; ++trial) {
    const u64 crash_at = 1 + rng.next_below(script_events - 1);
    pm.crash_at_event(nvm::ShadowPM::no_crash());
    Table t(pm, mem, kParams, /*format=*/true);
    pm.crash_at_event(pm.event_count() + crash_at);
    try {
      run_script(t);
    } catch (const nvm::SimulatedCrash&) {
    }
    pm.crash_at_event(nvm::ShadowPM::no_crash());

    for (const u64 evict_seed : {1ull, 2ull, 3ull}) {
      const auto image =
          pm.materialize_crash_image(nvm::CrashMode::kRandomEviction, evict_seed);
      pm.reset_to_image(image);
      ASSERT_TRUE(tags_match_after_reopen(pm, mem, /*recover=*/true))
          << "crash_at " << crash_at << " evict_seed " << evict_seed;
    }
  }
}

}  // namespace
}  // namespace gh
