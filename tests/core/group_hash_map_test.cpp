#include "core/group_hash_map.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "util/rng.hpp"

namespace gh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::string path;
};

TEST(GroupHashMap, InMemoryBasics) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1024});
  EXPECT_TRUE(map.empty());
  map.put(1, 10);
  map.put(2, 20);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.get(1), 10u);
  EXPECT_EQ(*map.get(2), 20u);
  EXPECT_FALSE(map.get(3).has_value());
  EXPECT_TRUE(map.contains(1));
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.contains(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.size(), 1u);
}

TEST(GroupHashMap, PutIsUpsert) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1024});
  map.put(5, 1);
  map.put(5, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.get(5), 2u);
}

TEST(GroupHashMap, FilePersistenceAcrossCleanShutdown) {
  TempFile file("gh_map_clean.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 1024});
    for (u64 k = 1; k <= 100; ++k) map.put(k, k * 11);
    map.close();
  }
  {
    auto map = GroupHashMap::open(file.path);
    EXPECT_FALSE(map.recovered_on_open());  // clean shutdown: no recovery
    EXPECT_EQ(map.size(), 100u);
    for (u64 k = 1; k <= 100; ++k) EXPECT_EQ(*map.get(k), k * 11);
  }
}

TEST(GroupHashMap, DirtyOpenTriggersRecovery) {
  TempFile file("gh_map_dirty.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 1024});
    for (u64 k = 1; k <= 50; ++k) map.put(k, k);
    // Simulate a crash: leak the dirty state by moving out without close.
    map.recover_now();  // (exercise the public hook too)
    // Destructor would mark clean; emulate a kill by syncing the region
    // and abandoning: easiest honest approach is to copy the file while
    // it is still dirty.
    std::filesystem::copy_file(file.path, file.path + ".crashed",
                               std::filesystem::copy_options::overwrite_existing);
    map.close();
  }
  {
    auto map = GroupHashMap::open(file.path + ".crashed");
    EXPECT_TRUE(map.recovered_on_open());
    EXPECT_EQ(map.size(), 50u);
    for (u64 k = 1; k <= 50; ++k) EXPECT_EQ(*map.get(k), k);
  }
  std::filesystem::remove(file.path + ".crashed");
}

TEST(GroupHashMap, AutoExpansionPreservesContents) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 64, .group_size = 16});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(3);
  // Insert far beyond the initial capacity.
  for (int i = 0; i < 2000; ++i) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    map.put(k, k ^ 0xff);
    oracle[k] = k ^ 0xff;
  }
  EXPECT_EQ(map.size(), oracle.size());
  EXPECT_GT(map.capacity(), 2000u);
  EXPECT_GT(map.metrics().expansions, 0u);
  for (const auto& [k, v] : oracle) EXPECT_EQ(*map.get(k), v);
}

TEST(GroupHashMap, ExpansionOfFileBackedMapSurvivesReopen) {
  TempFile file("gh_map_expand.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 64});
    for (u64 k = 1; k <= 500; ++k) map.put(k, k + 1);
    EXPECT_GT(map.metrics().expansions, 0u);
    map.close();
  }
  {
    auto map = GroupHashMap::open(file.path);
    EXPECT_EQ(map.size(), 500u);
    for (u64 k = 1; k <= 500; ++k) EXPECT_EQ(*map.get(k), k + 1);
  }
}

TEST(GroupHashMap, ThrowsWhenFullAndExpansionDisabled) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 16, .auto_expand = false});
  bool threw = false;
  try {
    for (u64 k = 1; k <= 64; ++k) map.put(k, k);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(GroupHashMap, ForEachVisitsAll) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 256});
  for (u64 k = 1; k <= 20; ++k) map.put(k, k * 2);
  std::unordered_map<u64, u64> seen;
  map.for_each([&](u64 k, u64 v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 20u);
  for (u64 k = 1; k <= 20; ++k) EXPECT_EQ(seen[k], k * 2);
}

TEST(GroupHashMap, MetricsExposeTraffic) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 256});
  map.put(1, 1);
  const MapMetrics& m = map.metrics();
  EXPECT_EQ(m.table.inserts, 1u);
  EXPECT_GT(m.persist.persist_calls, 0u);
  EXPECT_GT(m.persist.atomic_stores, 0u);
}

TEST(GroupHashMap, OpenRejectsWrongWidth) {
  TempFile file("gh_map_width.gh");
  {
    auto map = GroupHashMap::create(file.path, {.initial_cells = 64});
    map.put(1, 1);
    map.close();
  }
  EXPECT_THROW(GroupHashMapWide::open(file.path), std::runtime_error);
}

TEST(GroupHashMap, OpenRejectsGarbageFile) {
  TempFile file("gh_map_garbage.gh");
  {
    std::FILE* f = std::fopen(file.path.c_str(), "wb");
    std::string junk(8192, 'x');
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW(GroupHashMap::open(file.path), std::runtime_error);
}

TEST(GroupHashMapWide, FingerprintShapedKeys) {
  auto map = GroupHashMapWide::create_in_memory({.initial_cells = 1024});
  const Key128 a{0xdeadbeefcafe1234ull, 0x0123456789abcdefull};
  const Key128 b{a.lo, a.hi ^ 1};
  map.put(a, 1);
  map.put(b, 2);
  EXPECT_EQ(*map.get(a), 1u);
  EXPECT_EQ(*map.get(b), 2u);
  EXPECT_TRUE(map.erase(a));
  EXPECT_FALSE(map.get(a).has_value());
  EXPECT_EQ(*map.get(b), 2u);
}

TEST(GroupHashMapWide, FilePersistence) {
  TempFile file("gh_map_wide.gh");
  {
    auto map = GroupHashMapWide::create(file.path, {.initial_cells = 256});
    for (u64 i = 1; i <= 50; ++i) map.put(Key128{i, i * 7}, i);
    map.close();
  }
  {
    auto map = GroupHashMapWide::open(file.path);
    EXPECT_EQ(map.size(), 50u);
    for (u64 i = 1; i <= 50; ++i) EXPECT_EQ(*map.get(Key128{i, i * 7}), i);
  }
}

TEST(GroupHashMap, MoveSemantics) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 256});
  map.put(1, 10);
  GroupHashMap moved = std::move(map);
  EXPECT_EQ(*moved.get(1), 10u);
  moved.put(2, 20);
  EXPECT_EQ(moved.size(), 2u);
}

}  // namespace
}  // namespace gh
