#include "core/inspect.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/group_hash_map.hpp"
#include "core/map_format.hpp"
#include "hash/cells.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"

namespace gh {
namespace {

using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;

class InspectTest : public ::testing::Test {
 protected:
  Table& init(u64 level_cells, u32 group_size) {
    const Table::Params p{.level_cells = level_cells, .group_size = group_size};
    region_ = nvm::NvmRegion::create_anonymous(Table::required_bytes(p));
    table_.emplace(pm_, region_.bytes().first(Table::required_bytes(p)), p, true);
    return *table_;
  }

  nvm::NvmRegion region_;
  nvm::DirectPM pm_{nvm::PersistConfig::counting_only()};
  std::optional<Table> table_;
};

TEST_F(InspectTest, EmptyTableIsClean) {
  auto& t = init(256, 16);
  const TableInspection r = inspect(t);
  EXPECT_EQ(r.capacity, 512u);
  EXPECT_EQ(r.scanned_occupied, 0u);
  EXPECT_EQ(r.torn_cells, 0u);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.group_level2_occupancy.size(), 16u);
  EXPECT_EQ(r.full_groups, 0u);
}

TEST_F(InspectTest, OccupancySplitsAcrossLevels) {
  auto& t = init(256, 16);
  for (u64 k = 1; k <= 120; ++k) ASSERT_TRUE(t.insert(k, k));
  const TableInspection r = inspect(t);
  EXPECT_EQ(r.scanned_occupied, 120u);
  EXPECT_EQ(r.level1_occupied + r.level2_occupied, 120u);
  EXPECT_GT(r.level1_occupied, 0u);
  EXPECT_TRUE(r.count_consistent());
  u64 group_sum = 0;
  for (const u64 g : r.group_level2_occupancy) group_sum += g;
  EXPECT_EQ(group_sum, r.level2_occupied);
  EXPECT_DOUBLE_EQ(r.load_factor(), 120.0 / 512.0);
}

TEST_F(InspectTest, DetectsTornCellsAndStaleCount) {
  auto& t = init(256, 16);
  t.insert(1, 1);
  // Forge a torn payload and a stale count directly.
  auto* cells = reinterpret_cast<hash::Cell16*>(region_.data() + 64);
  usize forged = 0;
  for (usize i = 0; i < 512 && forged < 2; ++i) {
    if (!cells[i].occupied() && !cells[i].payload_dirty()) {
      cells[i].value = 0xbad;
      ++forged;
    }
  }
  const TableInspection before = inspect(t);
  EXPECT_EQ(before.torn_cells, 2u);
  EXPECT_FALSE(before.clean());
  // Recovery repairs both findings.
  t.recover();
  const TableInspection after = inspect(t);
  EXPECT_EQ(after.torn_cells, 0u);
  EXPECT_TRUE(after.clean());
}

TEST_F(InspectTest, FullGroupsAreReported) {
  auto& t = init(16, 8);  // 2 groups of 8
  const hash::SeededHash h(t.seed());
  // Fill group 0's level-2 cells completely: 2 keys per level-1 slot of
  // the first group.
  std::vector<int> filled(8, 0);
  for (u64 k = 1; t.count() < 16; ++k) {
    const u64 s = h(k) & 15;
    if (s < 8 && filled[s] < 2) {
      filled[s]++;
      ASSERT_TRUE(t.insert(k, k));
    }
  }
  const TableInspection r = inspect(t);
  EXPECT_EQ(r.full_groups, 1u);
  EXPECT_EQ(r.max_group_occupancy, 8u);
}

TEST(MapFileInfoTest, ReadsSuperblockWithoutRecovery) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gh_inspect_info.gh").string();
  std::filesystem::remove(path);
  {
    auto map = GroupHashMap::create(path, {.initial_cells = 1024, .group_size = 64});
    for (u64 k = 1; k <= 10; ++k) map.put(k, k);
    // Dirty state: inspect while open.
    const MapFileInfo dirty = read_map_file_info(path);
    EXPECT_FALSE(dirty.clean);
    EXPECT_EQ(dirty.cell_size, 16u);
    EXPECT_EQ(dirty.group_size, 64u);
    EXPECT_EQ(dirty.level_cells, 512u);
    EXPECT_EQ(dirty.count, 10u);
    map.close();
  }
  const MapFileInfo clean = read_map_file_info(path);
  EXPECT_TRUE(clean.clean);
  EXPECT_EQ(clean.count, 10u);
  EXPECT_EQ(clean.version, map_format::kVersion);
  EXPECT_TRUE(clean.superblock_crc_ok);
  std::filesystem::remove(path);
}

TEST(MapFileInfoTest, RejectsNonMapFiles) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gh_inspect_junk.gh").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::string junk(8192, 'z');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  EXPECT_THROW(read_map_file_info(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gh
