// Edge cases of the public map options and lifecycle not covered by the
// main GroupHashMap tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/group_hash_map.hpp"

namespace gh {
namespace {

TEST(MapOptions, TinyInitialCellsAreRoundedUp) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1});
  EXPECT_GE(map.capacity(), 16u);
  map.put(1, 1);
  EXPECT_EQ(*map.get(1), 1u);
}

TEST(MapOptions, NonPowerOfTwoCellsRoundUp) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1000});
  EXPECT_EQ(map.capacity(), 1024u);
}

TEST(MapOptions, GroupSizeClampsToLevelSize) {
  // 32 total cells => 16 per level; a group size of 256 must clamp.
  auto map = GroupHashMap::create_in_memory({.initial_cells = 32, .group_size = 256});
  for (u64 k = 1; k <= 20; ++k) map.put(k, k);  // forces collisions + expansion
  for (u64 k = 1; k <= 20; ++k) EXPECT_EQ(*map.get(k), k);
}

TEST(MapOptions, CustomSeedChangesPlacementNotSemantics) {
  auto a = GroupHashMap::create_in_memory({.initial_cells = 1024, .hash_seed = 111});
  auto b = GroupHashMap::create_in_memory({.initial_cells = 1024, .hash_seed = 222});
  for (u64 k = 1; k <= 100; ++k) {
    a.put(k, k * 2);
    b.put(k, k * 2);
  }
  for (u64 k = 1; k <= 100; ++k) {
    EXPECT_EQ(*a.get(k), k * 2);
    EXPECT_EQ(*b.get(k), k * 2);
  }
}

TEST(MapOptions, EmulatedLatencyIsApplied) {
  auto slow = GroupHashMap::create_in_memory(
      {.initial_cells = 1024, .flush_latency_ns = 300});
  slow.put(1, 1);
  EXPECT_GT(slow.metrics().persist.delay_ns, 0u);

  auto fast = GroupHashMap::create_in_memory({.initial_cells = 1024});
  fast.put(1, 1);
  EXPECT_EQ(fast.metrics().persist.delay_ns, 0u);
}

TEST(MapRmw, IncrementCreatesAndAccumulates) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 1024});
  EXPECT_EQ(map.increment(7), 1u);        // absent -> created with delta
  EXPECT_EQ(map.increment(7), 2u);
  EXPECT_EQ(map.increment(7, 10), 12u);
  EXPECT_EQ(*map.get(7), 12u);
  EXPECT_EQ(map.size(), 1u);
  // Works across expansion too.
  auto tiny = GroupHashMap::create_in_memory({.initial_cells = 16});
  for (u64 k = 1; k <= 500; ++k) tiny.increment(k, k);
  for (u64 k = 1; k <= 500; ++k) EXPECT_EQ(*tiny.get(k), k);
}

TEST(MapRmw, GetBatchMatchesScalarGet) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 4096});
  for (u64 k = 1; k <= 100; ++k) map.put(k, k * 3);
  std::vector<u64> keys;
  for (u64 k = 1; k <= 150; ++k) keys.push_back(k);  // 101..150 miss
  std::vector<std::optional<u64>> out(keys.size());
  map.get_batch(keys, out);
  for (usize i = 0; i < keys.size(); ++i) EXPECT_EQ(out[i], map.get(keys[i]));
}

TEST(MapLifecycle, CloseIsIdempotent) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gh_close_twice.gh").string();
  std::filesystem::remove(path);
  auto map = GroupHashMap::create(path, {.initial_cells = 64});
  map.put(1, 1);
  map.close();
  map.close();  // second close is a no-op
  std::filesystem::remove(path);
}

TEST(MapLifecycle, RecoverNowBumpsMetrics) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 256});
  map.put(1, 1);
  EXPECT_EQ(map.metrics().recoveries, 0u);
  const auto report = map.recover_now();
  EXPECT_EQ(report.recovered_count, 1u);
  EXPECT_EQ(map.metrics().recoveries, 1u);
  EXPECT_EQ(*map.get(1), 1u);
}

TEST(MapLifecycle, ManyExpansionsFromMinimumSize) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 16, .group_size = 4});
  for (u64 k = 1; k <= 5000; ++k) map.put(k, k ^ 0xabc);
  EXPECT_EQ(map.size(), 5000u);
  EXPECT_GE(map.metrics().expansions, 5u);
  for (u64 k = 1; k <= 5000; ++k) {
    ASSERT_TRUE(map.get(k).has_value()) << k;
    EXPECT_EQ(*map.get(k), k ^ 0xabc);
  }
}

TEST(MapLifecycle, EraseDuringExpansionHistoryStaysConsistent) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = 32});
  for (u64 round = 0; round < 10; ++round) {
    for (u64 k = 1; k <= 200; ++k) map.put(round << 32 | k, k);
    for (u64 k = 1; k <= 200; k += 2) EXPECT_TRUE(map.erase(round << 32 | k));
  }
  u64 expected = 0;
  for (u64 round = 0; round < 10; ++round) {
    for (u64 k = 2; k <= 200; k += 2) {
      ++expected;
      ASSERT_TRUE(map.get(round << 32 | k).has_value());
    }
  }
  EXPECT_EQ(map.size(), expected);
}

}  // namespace
}  // namespace gh
