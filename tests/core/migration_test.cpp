// Functional suite for the online non-blocking resize.
//
// With online_resize set, a placement failure no longer rebuilds the
// whole table in one stall: a double-sized migration target is published
// (`<path>.migrate`, own superblock) and the mutating ops themselves
// drain groups into it a few at a time (the "help-along" bound), with
// migrate_step() as the background tap. This suite covers the steady
// state machinery — correctness of reads/writes against the split image,
// the bounded help-along, the durable cursor's reopen-resume, integrity
// invariants (fingerprint tags, per-group CRCs) mid-migration, and the
// backoff surfacing regression (obs::Snapshot must show the current
// expand backoff window). Crash-at-every-step coverage lives in
// migration_crash_test.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/group_hash_map.hpp"
#include "nvm/fault_fs.hpp"

namespace gh {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

u64 key_of(u64 i) { return 3 * i + 1; }
u64 value_of(u64 i) { return i * 17 + 5; }

MapOptions online_options(u32 groups_per_op = 1) {
  MapOptions o;
  o.initial_cells = 64;
  o.group_size = 8;
  o.flush_latency_ns = 0;
  o.online_resize = true;
  o.migrate_groups_per_op = groups_per_op;
  return o;
}

/// Drives puts until a migration is running, then stops. Returns the
/// number of keys inserted (all of key_of/value_of(0..n-1)).
u64 fill_until_migrating(GroupHashMap& map, u64 limit = 10'000) {
  u64 i = 0;
  while (!map.migration_active() && i < limit) {
    map.put(key_of(i), value_of(i));
    ++i;
  }
  return i;
}

TEST(Migration, ResizeCompletesIncrementallyAndKeepsEveryKey) {
  auto map = GroupHashMap::create_in_memory(online_options());
  constexpr u64 kKeys = 3000;  // forces several back-to-back migrations
  for (u64 i = 0; i < kKeys; ++i) {
    map.put(key_of(i), value_of(i));
    // The split image must serve correct reads at every moment.
    if (i % 97 == 0) {
      const auto got = map.get(key_of(i / 2));
      ASSERT_TRUE(got.has_value()) << i;
      EXPECT_EQ(*got, value_of(i / 2));
    }
  }
  // Drain whatever migration is still running so the end state is a
  // single table again.
  while (map.migration_active()) ASSERT_GT(map.migrate_step(~0ull), 0u);
  EXPECT_EQ(map.size(), kKeys);
  for (u64 i = 0; i < kKeys; ++i) {
    const auto got = map.get(key_of(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, value_of(i)) << i;
  }
  const obs::Snapshot s = map.snapshot();
  EXPECT_GE(s.migration.started, 1u);
  EXPECT_EQ(s.migration.started, s.migration.completed);
  EXPECT_EQ(s.migration.emergency_expands, 0u);
  EXPECT_GT(s.migration.keys_migrated, 0u);
  EXPECT_EQ(s.lifecycle.expansions, 0u) << "no blocking expand on the online path";
  map.close();
}

TEST(Migration, HelpAlongIsBoundedPerOp) {
  auto map = GroupHashMap::create_in_memory(online_options(/*groups_per_op=*/2));
  const u64 inserted = fill_until_migrating(map);
  ASSERT_TRUE(map.migration_active());
  u64 i = inserted;
  while (map.migration_active()) {
    const u64 before = map.migration_cursor();
    map.put(key_of(i), value_of(i));
    ++i;
    if (!map.migration_active()) break;  // this put finished the drain
    EXPECT_LE(map.migration_cursor() - before, 2u)
        << "a mutating op must not migrate more than migrate_groups_per_op groups";
  }
  for (u64 j = 0; j < i; ++j) ASSERT_EQ(map.get(key_of(j)), value_of(j)) << j;
  map.close();
}

TEST(Migration, ZeroHelpAlongLeavesDrainToMigrateStep) {
  auto map = GroupHashMap::create_in_memory(online_options(/*groups_per_op=*/0));
  const u64 inserted = fill_until_migrating(map);
  ASSERT_TRUE(map.migration_active());
  const u64 cursor = map.migration_cursor();

  // Ops do not help: the cursor must hold still across a write burst.
  for (u64 i = 0; i < 32; ++i) map.put(key_of(inserted + i), value_of(inserted + i));
  EXPECT_TRUE(map.migration_active());
  EXPECT_EQ(map.migration_cursor(), cursor);

  // Bounded background steps drain it completely.
  u64 drained = 0;
  while (map.migration_active()) {
    const u64 n = map.migrate_step(4);
    ASSERT_GT(n, 0u) << "an active migration must make progress";
    EXPECT_LE(n, 4u);
    drained += n;
  }
  EXPECT_GT(drained, 0u);
  const obs::Snapshot s = map.snapshot();
  EXPECT_EQ(s.migration.bg_steps, drained);
  EXPECT_EQ(s.migration.help_steps, 0u);
  for (u64 i = 0; i < inserted + 32; ++i) {
    ASSERT_EQ(map.get(key_of(i)), value_of(i)) << i;
  }
  map.close();
}

TEST(Migration, SplitImageServesEveryOpKind) {
  auto map = GroupHashMap::create_in_memory(online_options(/*groups_per_op=*/0));
  const u64 inserted = fill_until_migrating(map);
  ASSERT_TRUE(map.migration_active());
  // Park the migration mid-drain so every op below runs against the
  // split image.
  ASSERT_GT(map.migrate_step(2), 0u);
  ASSERT_TRUE(map.migration_active());

  // get / contains / get_batch see both halves.
  std::vector<u64> keys;
  for (u64 i = 0; i < inserted; ++i) keys.push_back(key_of(i));
  std::vector<std::optional<u64>> out(keys.size());
  map.get_batch(keys, out);
  for (u64 i = 0; i < inserted; ++i) {
    ASSERT_TRUE(out[i].has_value()) << i;
    EXPECT_EQ(*out[i], value_of(i));
    EXPECT_TRUE(map.contains(key_of(i)));
  }

  // Updates land on whichever half holds the key and must not duplicate.
  const u64 before = map.size();
  for (u64 i = 0; i < inserted; ++i) map.put(key_of(i), value_of(i) + 1);
  EXPECT_EQ(map.size(), before);
  for (u64 i = 0; i < inserted; ++i) ASSERT_EQ(map.get(key_of(i)), value_of(i) + 1);

  // increment reads through the split image too.
  EXPECT_EQ(map.increment(key_of(0), 10), value_of(0) + 11);
  EXPECT_EQ(map.increment(key_of(0), 10), value_of(0) + 21);

  // erase / erase_batch hit both halves; erased keys stay gone.
  EXPECT_TRUE(map.erase(key_of(1)));
  EXPECT_FALSE(map.erase(key_of(1)));
  EXPECT_FALSE(map.get(key_of(1)).has_value());
  std::vector<u64> erase_keys{key_of(2), key_of(3), key_of(1)};
  std::vector<u8> hits(erase_keys.size(), 0);
  map.erase_batch(erase_keys, hits);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 0);

  // for_each walks the union exactly once per key.
  std::map<u64, u64> walked;
  map.for_each([&](u64 k, u64 v) {
    const bool fresh = walked.emplace(k, v).second;
    EXPECT_TRUE(fresh) << "duplicate key in for_each: " << k;
  });
  EXPECT_EQ(walked.size(), map.size());

  while (map.migration_active()) map.migrate_step(~0ull);
  EXPECT_FALSE(map.get(key_of(1)).has_value());
  for (u64 i = 4; i < inserted; ++i) ASSERT_EQ(map.get(key_of(i)), value_of(i) + 1);
  map.close();
}

TEST(Migration, IntegrityInvariantsHoldMidMigration) {
  auto map = GroupHashMap::create_in_memory(online_options(/*groups_per_op=*/0));
  const u64 inserted = fill_until_migrating(map);
  ASSERT_TRUE(map.migration_active());
  // Check at several cursor positions, including the endpoints.
  do {
    EXPECT_TRUE(map.debug_verify_tags())
        << "DRAM fingerprint tags out of sync at cursor " << map.migration_cursor();
    EXPECT_TRUE(map.debug_verify_group_checksums())
        << "group CRC mismatch at cursor " << map.migration_cursor();
  } while (map.migrate_step(1) > 0 && map.migration_active());
  EXPECT_TRUE(map.debug_verify_tags());
  EXPECT_TRUE(map.debug_verify_group_checksums());
  for (u64 i = 0; i < inserted; ++i) ASSERT_EQ(map.get(key_of(i)), value_of(i));
  map.close();
}

TEST(Migration, CleanCloseMidMigrationResumesOnOpen) {
  const std::string path = temp_path("gh_migration_resume.gh");
  const std::string mig = path + ".migrate";
  fs::remove(path);
  fs::remove(mig);

  u64 inserted = 0;
  u64 cursor = 0;
  {
    auto map = GroupHashMap::create(path, online_options(/*groups_per_op=*/0));
    inserted = fill_until_migrating(map);
    ASSERT_TRUE(map.migration_active());
    ASSERT_GT(map.migrate_step(2), 0u);
    ASSERT_TRUE(map.migration_active());
    cursor = map.migration_cursor();
    map.close();  // clean shutdown with the split image on disk
  }
  ASSERT_TRUE(fs::exists(mig));

  {
    auto map = GroupHashMap::open(path, online_options(/*groups_per_op=*/0));
    ASSERT_TRUE(map.migration_active()) << "the durable cursor must resume the drain";
    EXPECT_EQ(map.migration_cursor(), cursor) << "resume where the cursor points";
    EXPECT_FALSE(map.recovered_on_open()) << "clean close, so no Algorithm-4 pass";
    const obs::Snapshot s = map.snapshot();
    EXPECT_EQ(s.migration.resumed, 1u);
    for (u64 i = 0; i < inserted; ++i) ASSERT_EQ(map.get(key_of(i)), value_of(i)) << i;
    while (map.migration_active()) map.migrate_step(~0ull);
    EXPECT_FALSE(fs::exists(mig)) << "finalize renames the target over the map";
    for (u64 i = 0; i < inserted; ++i) ASSERT_EQ(map.get(key_of(i)), value_of(i)) << i;
    map.close();
  }
  // Third life: the finalized image is a plain single-table map.
  {
    auto map = GroupHashMap::open(path, online_options());
    EXPECT_FALSE(map.migration_active());
    EXPECT_EQ(map.size(), inserted);
    map.close();
  }
  fs::remove(path);
  fs::remove(path + ".flight");
}

TEST(Migration, ResumeHonorsDurableCursorWhateverTheFlagSays) {
  // An image with an armed cursor resumes even when reopened with
  // online_resize off — the split image is a fact of the file, not a
  // runtime preference.
  const std::string path = temp_path("gh_migration_resume_flagless.gh");
  fs::remove(path);
  fs::remove(path + ".migrate");
  u64 inserted = 0;
  {
    auto map = GroupHashMap::create(path, online_options(/*groups_per_op=*/0));
    inserted = fill_until_migrating(map);
    ASSERT_GT(map.migrate_step(1), 0u);
    ASSERT_TRUE(map.migration_active());
    map.close();
  }
  MapOptions plain;
  plain.initial_cells = 64;
  plain.group_size = 8;
  plain.flush_latency_ns = 0;
  auto map = GroupHashMap::open(path, plain);
  ASSERT_TRUE(map.migration_active());
  while (map.migration_active()) map.migrate_step(~0ull);
  for (u64 i = 0; i < inserted; ++i) ASSERT_EQ(map.get(key_of(i)), value_of(i)) << i;
  map.close();
  fs::remove(path);
  fs::remove(path + ".flight");
}

/// Fails every filesystem step whose path contains `needle` — a
/// persistent fault (full disk, bad directory), unlike
/// CrashScheduleFs::fail_at's one-shot.
struct PathFailFs : nvm::FsPolicy {
  std::string needle;
  Decision on_step(const nvm::FsStep& step) override {
    if (step.path.find(needle) != std::string::npos) return Decision::kFail;
    return Decision::kProceed;
  }
};

TEST(Migration, ExpandBackoffSurfacesInSnapshot) {
  // Satellite regression: obs::Snapshot must expose the try_expand
  // backoff state (current window and ops left before the retry) so an
  // operator can see a limping map without reading logs.
  const std::string path = temp_path("gh_migration_backoff.gh");
  fs::remove(path);
  fs::remove(path + ".migrate");
  auto map = GroupHashMap::create(path, online_options());
  {
    PathFailFs fail;
    fail.needle = ".migrate";
    const nvm::ScopedFsPolicy installed(&fail);
    u64 degraded = 0;
    u64 i = 0;
    u64 unplaceable = 0;  // a key the full table rejected — rejects again
    while (degraded < 2 && i < 10'000) {
      try {
        map.put(key_of(i), value_of(i));
      } catch (const MapDegradedError&) {
        ++degraded;
        unplaceable = key_of(i);
      }
      ++i;
    }
    ASSERT_EQ(degraded, 2u) << "the failing target create must degrade puts";
    EXPECT_TRUE(map.degraded());
    const obs::Snapshot s = map.snapshot();
    EXPECT_TRUE(s.lifecycle.degraded);
    EXPECT_EQ(s.lifecycle.expand_failures, 2u);
    // Failure 1 retries immediately (backoff 1, no window); the second
    // consecutive failure doubles the window and opens it: cooldown 1.
    EXPECT_EQ(s.lifecycle.expand_backoff, 2u);
    EXPECT_EQ(s.lifecycle.expand_cooldown, 1u);
    // The next placement failure is absorbed by the window (no
    // expansion attempt): cooldown drains to 0, the cap stays.
    try {
      map.put(unplaceable, 1);
      FAIL() << "put inside the backoff window must degrade";
    } catch (const MapDegradedError&) {
    }
    const obs::Snapshot s2 = map.snapshot();
    EXPECT_EQ(s2.lifecycle.expand_failures, 2u) << "absorbed, not retried";
    EXPECT_EQ(s2.lifecycle.expand_backoff, 2u);
    EXPECT_EQ(s2.lifecycle.expand_cooldown, 0u);
  }
  // Fault gone: the next placement failure retries and succeeds, and the
  // backoff fields read zero again.
  u64 j = 100'000;
  while (!map.migration_active()) map.put(key_of(j), value_of(j)), ++j;
  EXPECT_FALSE(map.degraded());
  const obs::Snapshot after = map.snapshot();
  EXPECT_EQ(after.lifecycle.expand_backoff, 0u);
  EXPECT_EQ(after.lifecycle.expand_cooldown, 0u);
  while (map.migration_active()) map.migrate_step(~0ull);
  map.close();
  fs::remove(path);
  fs::remove(path + ".flight");
}

TEST(Migration, EmergencyExpandMergesSplitImageWhenTargetOverflows) {
  // Force the pathological case: a migration is parked (no help-along)
  // and writes keep landing until even the double-sized target cannot
  // place one. try_expand must then fall back to the blocking merge of
  // both halves and leave a single bigger table with every key.
  auto map = GroupHashMap::create_in_memory(online_options(/*groups_per_op=*/0));
  fill_until_migrating(map);
  ASSERT_TRUE(map.migration_active());
  u64 i = 200'000;
  const u64 first = i;
  while (map.migration_active() && i < first + 50'000) {
    map.put(key_of(i), value_of(i));
    ++i;
  }
  ASSERT_FALSE(map.migration_active()) << "overflowing the target must end the migration";
  const obs::Snapshot s = map.snapshot();
  EXPECT_GE(s.migration.emergency_expands, 1u);
  for (u64 k = first; k < i; ++k) ASSERT_EQ(map.get(key_of(k)), value_of(k)) << k;
  EXPECT_TRUE(map.debug_verify_tags());
  EXPECT_TRUE(map.debug_verify_group_checksums());
  map.close();
}

}  // namespace
}  // namespace gh
