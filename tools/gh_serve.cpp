// gh_serve — run the sharded KV service and drive a YCSB burst at it.
//
// One hermetic process: N shard workers behind their ingest rings, M
// client threads round-tripping request batches. Prints aggregate QPS
// and p50/p99/p999 end-to-end latency per op kind from the service-level
// obs histograms, then the per-shard roll-up. The CI fast lane runs a
// 2-second YCSB-C burst of this and checks the reported p99 is nonzero.
//
// Observability surfaces (all no-ops — no file is created — under
// GH_OBS_OFF):
//   --trace-mode=off|sampled|full  request tracing (spans per batch)
//   --trace-out=PATH    Chrome trace_event JSON of the drained spans
//   --spans-out=PATH    raw span file ("GHSPANS1", for gh_stats --spans)
//   --stats-file=PATH   live stats: a background thread ticks a windowed
//                       TimeSeries off live_snapshot() every
//                       --stats-interval-ms and atomically rewrites PATH
//                       (tmp + rename) with snapshot + timeseries JSON —
//                       the file gh_top attaches to.
//
//   gh_serve [--shards=4] [--clients=4] [--workload=a|b|c] [--seconds=2]
//            [--ops=N per client, overrides --seconds] [--keys=65536]
//            [--batch=64] [--window=64] [--ring=1024] [--naive]
//            [--data_dir=PATH] [--zipf=0.99] [--seed=42] [--flush-ns=0]
//            [--trace-mode=off] [--trace-shift=6] [--trace-out=PATH]
//            [--spans-out=PATH] [--stats-file=PATH] [--stats-interval-ms=500]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/group_hash_map.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "service/service.hpp"
#include "service/ycsb_driver.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

gh::u64 wall_ms() {
  return static_cast<gh::u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

/// Atomic rewrite: readers (gh_top) never see a half-written file.
bool write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  if (!write_file(tmp, body)) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gh;
  const Cli cli(argc, argv);

  service::ServiceOptions sopts;
  sopts.shards = static_cast<u32>(cli.get_u64("shards", 4));
  sopts.ring_capacity = static_cast<u32>(cli.get_u64("ring", 1024));
  sopts.batch_window = static_cast<u32>(cli.get_u64("window", 64));
  sopts.naive = cli.has("naive");
  sopts.data_dir = cli.get_or("data_dir", "");
  sopts.trace_mode = obs::trace_mode_from(cli.get_or("trace-mode", "off"));
  sopts.trace_sample_shift =
      static_cast<u32>(cli.get_u64("trace-shift", obs::kTraceSampleShift));
  GH_CHECK_MSG(sopts.shards >= 1, "--shards must be >= 1");
  GH_CHECK_MSG(sopts.batch_window >= 1, "--window must be >= 1");

  service::DriverOptions dopts;
  dopts.clients = static_cast<u32>(cli.get_u64("clients", 4));
  dopts.batch = static_cast<u32>(cli.get_u64("batch", 64));
  dopts.keys = cli.get_u64("keys", 1u << 16);
  GH_CHECK_MSG(dopts.clients >= 1, "--clients must be >= 1");
  GH_CHECK_MSG(dopts.batch >= 1, "--batch must be >= 1");
  GH_CHECK_MSG(dopts.keys >= 1, "--keys must be >= 1");
  dopts.ops_per_client = cli.get_u64("ops", 0);
  dopts.seconds = dopts.ops_per_client > 0
                      ? 0
                      : static_cast<double>(cli.get_u64("seconds", 2));
  dopts.seed = cli.get_u64("seed", 42);
  const std::string workload = cli.get_or("workload", "c");
  dopts.mix = service::mix_for(workload);
  dopts.zipf_theta = std::stod(cli.get_or("zipf", "0.99"));

  u64 cells = 64;
  while (cells < dopts.keys * 2 / sopts.shards) cells <<= 1;
  sopts.map_options.initial_cells = cells;
  // Emulated PM write latency per flushed line (0 = DRAM speed). Raising
  // it shifts the phase attribution from ring_wait/probe toward
  // persist/fence — visible live in gh_top.
  sopts.map_options.flush_latency_ns = cli.get_u64("flush-ns", 0);

  // Observability outputs. Everything here is gated on obs::kEnabled so
  // a GH_OBS_OFF build creates no trace/span/stats file at all (the CI
  // obs-off lane asserts exactly that).
  const std::string trace_out = cli.get_or("trace-out", "");
  const std::string spans_out = cli.get_or("spans-out", "");
  const std::string stats_file = cli.get_or("stats-file", "");
  const u64 stats_interval_ms = cli.get_u64("stats-interval-ms", 500);

  std::cout << "gh_serve: " << sopts.shards << " shards, " << dopts.clients
            << " clients, YCSB-" << dopts.mix.name << ", batch " << dopts.batch
            << ", " << format_count(dopts.keys) << " keys"
            << (sopts.naive ? ", NAIVE one-op-per-request" : ", batched ingest")
            << (sopts.trace_mode != obs::TraceMode::kOff
                    ? std::string(", tracing ") + obs::trace_mode_name(sopts.trace_mode)
                    : std::string())
            << "\n";

  service::ShardServer server(sopts);

  // Live stats thread: tick the windowed TimeSeries off live_snapshot()
  // and atomically rewrite the stats file. Short sleep slices keep the
  // shutdown latency low even with long intervals.
  obs::TimeSeries timeseries(/*max_windows=*/120, stats_interval_ms);
  std::atomic<bool> stats_stop{false};
  std::thread stats_thread;
  if (obs::kEnabled && !stats_file.empty()) {
    stats_thread = std::thread([&] {
      u64 next = wall_ms();
      while (!stats_stop.load(std::memory_order_acquire)) {
        const u64 now = wall_ms();
        if (now >= next) {
          obs::Snapshot live = server.live_snapshot();
          timeseries.tick(live, now);
          live.timeseries = timeseries.gauges();
          std::string body = "{\"schema\":\"gh.obs.stats.v1\",\"snapshot\":";
          body += obs::export_json(live);
          body += ",\"timeseries\":";
          body += obs::export_timeseries_json(timeseries);
          body += "}\n";
          write_file_atomic(stats_file, body);
          next = now + (stats_interval_ms == 0 ? 1 : stats_interval_ms);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  const service::DriverReport r = service::run_ycsb(server, dopts);

  if (stats_thread.joinable()) {
    stats_stop.store(true, std::memory_order_release);
    stats_thread.join();
  }

  std::cout << "aggregate: qps=" << format_double(r.qps, 0) << " ops="
            << r.ops << " secs=" << format_double(r.seconds, 3)
            << " ok=" << r.ok << " not_found=" << r.not_found
            << " degraded=" << r.degraded << " shard_down=" << r.shard_down << "\n";

  const auto show = [](const char* name, const obs::HistogramSnapshot& h) {
    if (h.count == 0) return;
    std::cout << "latency[" << name << "]: count=" << h.count
              << " p50=" << format_double(h.p50_ns, 0)
              << " p99=" << format_double(h.p99_ns, 0)
              << " p999=" << format_double(h.p999_ns, 0) << " (ns)\n";
  };
  show("get", r.latency.find);
  show("put", r.latency.insert);
  show("erase", r.latency.erase);

  server.stop();

  // Drain the span rings once, after the workers quiesced, and feed
  // both export surfaces from the same drain.
  if (obs::kEnabled && (!trace_out.empty() || !spans_out.empty())) {
    const std::vector<obs::SpanRecord> spans =
        obs::SpanCollector::global().drain_all();
    std::cout << "spans: " << spans.size() << " drained, "
              << obs::SpanCollector::global().dropped() << " dropped\n";
    if (!spans_out.empty()) {
      if (!obs::write_spans_file(spans_out, spans, obs::ticks_per_ns())) {
        std::cerr << "gh_serve: cannot write " << spans_out << "\n";
        return 1;
      }
    }
    if (!trace_out.empty()) {
      u64 base = 0;
      for (const obs::SpanRecord& s : spans) {
        if (base == 0 || s.t_start < base) base = s.t_start;
      }
      std::vector<obs::TraceEvent> events;
      obs::append_span_trace_events(spans, obs::ticks_per_ns(), base, events);
      if (!write_file(trace_out, obs::render_trace_json(std::move(events)))) {
        std::cerr << "gh_serve: cannot write " << trace_out << "\n";
        return 1;
      }
    }
  }

  const obs::Snapshot snap = server.snapshot();
  std::cout << "shards: size=" << snap.size << " capacity=" << snap.capacity
            << " load=" << format_double(snap.load_factor, 3)
            << " expansions=" << snap.lifecycle.expansions
            << " fences=" << snap.persist.fences << "\n";
  for (const auto& b : snap.per_shard) {
    std::cout << "  shard" << b.shard << ": size=" << b.size
              << " expansions=" << b.expansions
              << (b.degraded ? " DEGRADED" : "") << "\n";
  }
  return 0;
}
