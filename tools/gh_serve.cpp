// gh_serve — run the sharded KV service and drive a YCSB burst at it.
//
// One hermetic process: N shard workers behind their ingest rings, M
// client threads round-tripping request batches. Prints aggregate QPS
// and p50/p99/p999 end-to-end latency per op kind from the service-level
// obs histograms, then the per-shard roll-up. The CI fast lane runs a
// 2-second YCSB-C burst of this and checks the reported p99 is nonzero.
//
//   gh_serve [--shards=4] [--clients=4] [--workload=a|b|c] [--seconds=2]
//            [--ops=N per client, overrides --seconds] [--keys=65536]
//            [--batch=64] [--window=64] [--ring=1024] [--naive]
//            [--data_dir=PATH] [--zipf=0.99] [--seed=42]
#include <iostream>
#include <string>

#include "core/group_hash_map.hpp"
#include "service/service.hpp"
#include "service/ycsb_driver.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  const Cli cli(argc, argv);

  service::ServiceOptions sopts;
  sopts.shards = static_cast<u32>(cli.get_u64("shards", 4));
  sopts.ring_capacity = static_cast<u32>(cli.get_u64("ring", 1024));
  sopts.batch_window = static_cast<u32>(cli.get_u64("window", 64));
  sopts.naive = cli.has("naive");
  sopts.data_dir = cli.get_or("data_dir", "");
  GH_CHECK_MSG(sopts.shards >= 1, "--shards must be >= 1");
  GH_CHECK_MSG(sopts.batch_window >= 1, "--window must be >= 1");

  service::DriverOptions dopts;
  dopts.clients = static_cast<u32>(cli.get_u64("clients", 4));
  dopts.batch = static_cast<u32>(cli.get_u64("batch", 64));
  dopts.keys = cli.get_u64("keys", 1u << 16);
  GH_CHECK_MSG(dopts.clients >= 1, "--clients must be >= 1");
  GH_CHECK_MSG(dopts.batch >= 1, "--batch must be >= 1");
  GH_CHECK_MSG(dopts.keys >= 1, "--keys must be >= 1");
  dopts.ops_per_client = cli.get_u64("ops", 0);
  dopts.seconds = dopts.ops_per_client > 0
                      ? 0
                      : static_cast<double>(cli.get_u64("seconds", 2));
  dopts.seed = cli.get_u64("seed", 42);
  const std::string workload = cli.get_or("workload", "c");
  dopts.mix = service::mix_for(workload);
  dopts.zipf_theta = std::stod(cli.get_or("zipf", "0.99"));

  u64 cells = 64;
  while (cells < dopts.keys * 2 / sopts.shards) cells <<= 1;
  sopts.map_options.initial_cells = cells;
  sopts.map_options.flush_latency_ns = 0;

  std::cout << "gh_serve: " << sopts.shards << " shards, " << dopts.clients
            << " clients, YCSB-" << dopts.mix.name << ", batch " << dopts.batch
            << ", " << format_count(dopts.keys) << " keys"
            << (sopts.naive ? ", NAIVE one-op-per-request" : ", batched ingest")
            << "\n";

  service::ShardServer server(sopts);
  const service::DriverReport r = service::run_ycsb(server, dopts);

  std::cout << "aggregate: qps=" << format_double(r.qps, 0) << " ops="
            << r.ops << " secs=" << format_double(r.seconds, 3)
            << " ok=" << r.ok << " not_found=" << r.not_found
            << " degraded=" << r.degraded << " shard_down=" << r.shard_down << "\n";

  const auto show = [](const char* name, const obs::HistogramSnapshot& h) {
    if (h.count == 0) return;
    std::cout << "latency[" << name << "]: count=" << h.count
              << " p50=" << format_double(h.p50_ns, 0)
              << " p99=" << format_double(h.p99_ns, 0)
              << " p999=" << format_double(h.p999_ns, 0) << " (ns)\n";
  };
  show("get", r.latency.find);
  show("put", r.latency.insert);
  show("erase", r.latency.erase);

  server.stop();
  const obs::Snapshot snap = server.snapshot();
  std::cout << "shards: size=" << snap.size << " capacity=" << snap.capacity
            << " load=" << format_double(snap.load_factor, 3)
            << " expansions=" << snap.lifecycle.expansions
            << " fences=" << snap.persist.fences << "\n";
  for (const auto& b : snap.per_shard) {
    std::cout << "  shard" << b.shard << ": size=" << b.size
              << " expansions=" << b.expansions
              << (b.degraded ? " DEGRADED" : "") << "\n";
  }
  return 0;
}
