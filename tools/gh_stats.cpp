// gh_stats — attach to a GroupHashMap file and dump one unified
// observability snapshot (the obs::Snapshot API this tool exists to
// exercise end to end).
//
//   gh_stats <file.gh> [--format=json|prom|text] [--registry]
//   gh_stats --flight <file.flight> [--spans=file.spans] [--trace=out.json]
//   gh_stats --spans=<file.spans> [--trace=out.json]
//   gh_stats --selftest [--format=json|prom|text] [--keep]
//
// --registry additionally dumps the process-wide MetricsRegistry (named
// counters/histograms registered by every open map in this process).
//
// --flight scans a flight-recorder sidecar offline (no map open): prints
// the crash-forensics timeline, and with --trace=<out> also writes a
// Chrome trace-event JSON (chrome://tracing, Perfetto) of the records.
//
// --spans reads a span file written by gh_serve --spans-out. Combined
// with --flight, both sources land in ONE trace JSON on a shared time
// axis (they record the same TSC domain), so a request's spans line up
// against the map-level flight records under chrome://tracing.
//
// --selftest is the CI smoke path: build a temporary map, write through
// it, close, reopen, snapshot, export, and validate the JSON against the
// schema marker — exit 0 only if every step holds. --keep leaves the
// temporary map (and its .flight sidecar) behind for follow-up steps.
//
// Exit codes: 0 ok, 1 snapshot/schema check failed, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/group_hash_map.hpp"
#include "core/inspect.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

void print_histogram_row(const char* name, const gh::obs::HistogramSnapshot& h) {
  if (h.count == 0) return;
  std::printf("  %-8s count=%-10s p50=%-10s p95=%-10s p99=%-10s max=%s\n", name,
              gh::format_count(h.count).c_str(), gh::format_ns(h.p50_ns).c_str(),
              gh::format_ns(h.p95_ns).c_str(), gh::format_ns(h.p99_ns).c_str(),
              gh::format_ns(static_cast<double>(h.max_ns)).c_str());
}

void print_text(const gh::obs::Snapshot& s) {
  std::printf("source          %s (schema v%u)\n", s.source.c_str(), s.version);
  std::printf("size            %s / %s cells (load %s)\n", gh::format_count(s.size).c_str(),
              gh::format_count(s.capacity).c_str(),
              gh::format_double(s.load_factor, 3).c_str());
  std::printf("persist         stores=%s lines_flushed=%s fences=%s delay=%s\n",
              gh::format_count(s.persist.stores).c_str(),
              gh::format_count(s.persist.lines_flushed).c_str(),
              gh::format_count(s.persist.fences).c_str(),
              gh::format_ns(static_cast<double>(s.persist.delay_ns)).c_str());
  std::printf("table ops       inserts=%s queries=%s erases=%s probes=%s\n",
              gh::format_count(s.table.inserts).c_str(),
              gh::format_count(s.table.queries).c_str(),
              gh::format_count(s.table.erases).c_str(),
              gh::format_count(s.table.probes).c_str());
  std::printf("integrity       scrubbed=%s crc_mismatches=%s quarantined=%s lost=%s\n",
              gh::format_count(s.scrub.groups_scrubbed).c_str(),
              gh::format_count(s.scrub.crc_mismatches).c_str(),
              gh::format_count(s.scrub.groups_quarantined).c_str(),
              gh::format_count(s.scrub.cells_lost).c_str());
  std::printf("lifecycle       expansions=%s compactions=%s recoveries=%s degraded=%s\n",
              gh::format_count(s.lifecycle.expansions).c_str(),
              gh::format_count(s.lifecycle.compactions).c_str(),
              gh::format_count(s.lifecycle.recoveries).c_str(),
              s.lifecycle.degraded ? "yes" : "no");
  if (s.lifecycle.expand_failures != 0 || s.lifecycle.expand_backoff != 0) {
    std::printf("expand backoff  failures=%s backoff=%s cooldown=%s\n",
                gh::format_count(s.lifecycle.expand_failures).c_str(),
                gh::format_count(s.lifecycle.expand_backoff).c_str(),
                gh::format_count(s.lifecycle.expand_cooldown).c_str());
  }
  if (s.migration.started != 0 || s.migration.completed != 0 || s.migration.resumed != 0 ||
      s.migration.emergency_expands != 0 || s.migration.active != 0) {
    std::printf("migration       started=%s completed=%s resumed=%s emergency=%s\n",
                gh::format_count(s.migration.started).c_str(),
                gh::format_count(s.migration.completed).c_str(),
                gh::format_count(s.migration.resumed).c_str(),
                gh::format_count(s.migration.emergency_expands).c_str());
    std::printf("                groups=%s keys=%s help_steps=%s bg_steps=%s\n",
                gh::format_count(s.migration.groups_migrated).c_str(),
                gh::format_count(s.migration.keys_migrated).c_str(),
                gh::format_count(s.migration.help_steps).c_str(),
                gh::format_count(s.migration.bg_steps).c_str());
    if (s.migration.active != 0) {
      std::printf("                ACTIVE: cursor=%s / %s source groups\n",
                  gh::format_count(s.migration.cursor).c_str(),
                  gh::format_count(s.migration.total_groups).c_str());
    }
  }
  if (s.shards != 0) {
    std::printf("contention      retries=%s fallbacks=%s writer_waits=%s (%zu shards)\n",
                gh::format_count(s.contention.read_retries).c_str(),
                gh::format_count(s.contention.read_fallbacks).c_str(),
                gh::format_count(s.contention.writer_waits).c_str(), s.shards);
  }
  std::printf("latency\n");
  print_histogram_row("insert", s.latency.insert);
  print_histogram_row("find", s.latency.find);
  print_histogram_row("erase", s.latency.erase);
  print_histogram_row("expand", s.latency.expand);
  print_histogram_row("scrub", s.latency.scrub);
  print_histogram_row("recover", s.latency.recover);
  print_histogram_row("compact", s.latency.compact);
  print_histogram_row("migrate", s.latency.migrate);
  bool phases_header = false;
  for (gh::usize k = 0; k < gh::obs::kOpKinds; ++k) {
    const auto& row = s.phases.rows[k];
    if (row.samples == 0 && row.op_ns == 0) continue;
    if (!phases_header) {
      std::printf("phases          (share of attributed time per op kind)\n");
      phases_header = true;
    }
    const auto kind = static_cast<gh::obs::OpKind>(k);
    std::printf("  %-8s", gh::obs::op_kind_name(kind));
    for (gh::usize p = 0; p < gh::obs::kPhases; ++p) {
      std::printf(" %s=%.1f%%", gh::obs::phase_name(static_cast<gh::obs::Phase>(p)),
                  100.0 * s.phases.share(kind, static_cast<gh::obs::Phase>(p)));
    }
    std::printf("\n");
  }
}

int emit(const gh::obs::Snapshot& s, const std::string& format, bool registry) {
  if (format == "json") {
    const std::string text = gh::obs::export_json(s);
    std::string error;
    if (!gh::obs::validate_json(text, &error)) {
      std::fprintf(stderr, "gh_stats: produced invalid JSON: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", text.c_str());
    if (registry) std::printf("%s\n", gh::obs::export_registry_json().c_str());
  } else if (format == "prom") {
    std::printf("%s", gh::obs::export_prometheus(s).c_str());
    if (registry) {
      std::printf("%s", gh::obs::export_prometheus(
                            gh::obs::MetricsRegistry::global().collect()).c_str());
    }
  } else if (format == "text") {
    print_text(s);
    if (registry) std::printf("\n%s\n", gh::obs::export_registry_json().c_str());
  } else {
    std::fprintf(stderr, "gh_stats: unknown --format=%s (json|prom|text)\n",
                 format.c_str());
    return 2;
  }
  return 0;
}

template <class Map>
int dump(const std::string& path, const std::string& format, bool registry) {
  Map map = Map::open(path);
  return emit(map.snapshot(), format, registry);
}

int write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "gh_stats: cannot write %s\n", path.c_str());
    return 2;
  }
  out << body;
  return 0;
}

/// Spans-only view: summary to stdout, optional Chrome trace JSON.
int dump_spans(const std::string& spans_path, const std::string& trace_path) {
  const gh::obs::SpanFile f = gh::obs::read_spans_file(spans_path);
  if (!f.valid) {
    std::fprintf(stderr, "gh_stats: %s is not a valid span file\n", spans_path.c_str());
    return 1;
  }
  std::printf("spans: %zu records, base_ticks=%llu, ticks_per_ns=%.3f\n",
              f.spans.size(), static_cast<unsigned long long>(f.base_ticks),
              f.ticks_per_ns);
  gh::u64 per_kind[gh::obs::kSpanKinds] = {};
  for (const gh::obs::SpanRecord& s : f.spans) {
    if (s.kind < gh::obs::kSpanKinds) per_kind[s.kind]++;
  }
  for (gh::usize k = 0; k < gh::obs::kSpanKinds; ++k) {
    if (per_kind[k] == 0) continue;
    std::printf("  %-12s %s\n",
                gh::obs::span_kind_name(static_cast<gh::obs::SpanKind>(k)),
                gh::format_count(per_kind[k]).c_str());
  }
  if (trace_path.empty()) return 0;
  std::vector<gh::obs::TraceEvent> events;
  gh::obs::append_span_trace_events(f.spans, f.ticks_per_ns, f.base_ticks, events);
  const int rc = write_text_file(trace_path, gh::obs::render_trace_json(std::move(events)));
  if (rc == 0) std::fprintf(stderr, "gh_stats: wrote trace to %s\n", trace_path.c_str());
  return rc;
}

/// Offline flight-sidecar scan: timeline to stdout, optional Chrome
/// trace JSON to `trace_path`. Works without opening (or consuming) the
/// map the sidecar belongs to. A non-empty `spans_path` merges that span
/// file's records into the same trace on a shared time axis (both
/// sources record raw TSC).
int dump_flight(const std::string& path, const std::string& trace_path,
                const std::string& spans_path = "") {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "gh_stats: cannot read %s\n", path.c_str());
    return 2;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const gh::obs::FlightScan scan = gh::obs::scan_flight(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(raw.data()),
                                 raw.size()));
  if (!scan.valid_header) {
    std::fprintf(stderr, "gh_stats: %s is not a valid flight sidecar\n", path.c_str());
    return 1;
  }
  std::printf("%s", gh::obs::flight_timeline_text(scan).c_str());
  gh::obs::SpanFile spans;
  if (!spans_path.empty()) {
    spans = gh::obs::read_spans_file(spans_path);
    if (!spans.valid) {
      std::fprintf(stderr, "gh_stats: %s is not a valid span file\n", spans_path.c_str());
      return 1;
    }
    std::printf("spans: merging %zu records from %s\n", spans.spans.size(),
                spans_path.c_str());
  }
  if (!trace_path.empty()) {
    std::vector<gh::obs::TraceEvent> events;
    if (spans.valid && !spans.spans.empty()) {
      // Anchor both sources at the earliest tick either one saw.
      gh::u64 base = spans.base_ticks;
      for (const gh::obs::FlightRecordView& r : scan.records) {
        if (base == 0 || r.tsc < base) base = r.tsc;
      }
      gh::obs::append_flight_trace_events(scan, events, base);
      gh::obs::append_span_trace_events(spans.spans, spans.ticks_per_ns, base, events);
    } else {
      gh::obs::append_flight_trace_events(scan, events);
    }
    const int rc =
        write_text_file(trace_path, gh::obs::render_trace_json(std::move(events)));
    if (rc != 0) return rc;
    std::fprintf(stderr, "gh_stats: wrote trace to %s\n", trace_path.c_str());
  }
  return 0;
}

/// CI smoke: create → write → close → reopen → snapshot → export →
/// validate. Returns 0 only when the snapshot carries what the writes
/// implied and the JSON passes the structural check.
int selftest(const std::string& format, bool keep) {
  const std::string path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                           "/gh_stats_selftest.gh";
  const std::string flight_path = path + ".flight";
  std::remove(path.c_str());
  std::remove(flight_path.c_str());
  constexpr gh::u64 kKeys = 2000;
  gh::u64 total = kKeys;
  {
    // kFull flight mode: every op leaves a record, so the sidecar scan
    // below is deterministic regardless of the sampling shift. Start the
    // map 256 cells deep with online resize on: the 2000 puts force
    // several incremental migrations, so the snapshot's migration
    // section and the sidecar's migrate phase records are exercised by
    // the same smoke run CI greps. Then put until a migration is live
    // and close mid-drain: the reopen below must resume from the
    // durable cursor, and the sidecar scan must name the parked
    // migration and its cursor.
    auto map = gh::GroupHashMap::create(path, {.initial_cells = 256,
                                               .flight_mode = gh::obs::FlightMode::kFull,
                                               .online_resize = true});
    for (gh::u64 k = 1; k <= kKeys; ++k) map.put(k, k * 3);
    while (!map.migration_active()) {
      ++total;
      map.put(total, total * 3);
    }
    const gh::obs::Snapshot live = map.snapshot();
    // Latency histograms are sampled (1 in 2^6 ops by default), so the
    // count is ~kKeys/64 — just demand a nonzero sample set.
    if (live.size != total || live.persist.lines_flushed == 0 ||
        (gh::obs::kEnabled && live.latency.insert.count == 0)) {
      std::fprintf(stderr, "gh_stats: live snapshot inconsistent (size=%llu)\n",
                   static_cast<unsigned long long>(live.size));
      return 1;
    }
    if (live.migration.started == 0 || live.migration.active != 1) {
      std::fprintf(stderr, "gh_stats: selftest never resized online\n");
      return 1;
    }
  }
  if (gh::obs::kEnabled) {
    // Scan the sidecar BEFORE reopening (the reopen hands the rings to a
    // fresh session): the timeline must carry the migrate phase records
    // and the in-flight reconstruction must name the resume cursor of
    // the migration we just parked.
    std::ifstream fin(flight_path, std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(fin)),
                          std::istreambuf_iterator<char>());
    const gh::obs::FlightScan scan = gh::obs::scan_flight(
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(raw.data()),
                                   raw.size()));
    const std::string timeline = gh::obs::flight_timeline_text(scan);
    std::printf("%s", timeline.c_str());
    if (!scan.valid_header || timeline.find("migrate") == std::string::npos ||
        timeline.find("resume cursor") == std::string::npos) {
      std::fprintf(stderr, "gh_stats: sidecar timeline missing the parked migration\n");
      return 1;
    }
  }
  auto map = gh::GroupHashMap::open(path);
  // The open resumed the parked migration from its durable cursor; drain
  // it the way a maintenance tick would.
  while (map.migration_active()) map.migrate_step(64);
  const gh::obs::Snapshot s = map.snapshot();
  if (s.size != total) {
    std::fprintf(stderr, "gh_stats: reopened snapshot lost keys\n");
    return 1;
  }
  if (s.migration.resumed != 1 || s.migration.completed != 1) {
    std::fprintf(stderr, "gh_stats: reopen did not resume the parked migration\n");
    return 1;
  }
  const std::string json = gh::obs::export_json(s);
  std::string error;
  if (!gh::obs::validate_json(json, &error)) {
    std::fprintf(stderr, "gh_stats: selftest JSON invalid: %s\n", error.c_str());
    return 1;
  }
  if (json.find(gh::obs::kSnapshotSchema) == std::string::npos ||
      json.find("\"persist\"") == std::string::npos ||
      json.find("\"latency\"") == std::string::npos ||
      json.find("\"migration\"") == std::string::npos) {
    std::fprintf(stderr, "gh_stats: selftest JSON missing required keys\n%s\n", json.c_str());
    return 1;
  }
  if (gh::obs::export_prometheus(s).find("gh_size") == std::string::npos) {
    std::fprintf(stderr, "gh_stats: prometheus export missing gh_size\n");
    return 1;
  }
  // Flight sidecar invariants: present with a valid header and no torn
  // records when observability is compiled in; never created under
  // GH_OBS_OFF (the CI obs-off lane asserts the same from the outside).
  std::error_code ec;
  if (std::filesystem::exists(flight_path, ec) != gh::obs::kEnabled) {
    std::fprintf(stderr, "gh_stats: flight sidecar %s unexpectedly %s\n",
                 flight_path.c_str(), gh::obs::kEnabled ? "missing" : "present");
    return 1;
  }
  if (gh::obs::kEnabled) {
    // Touch the reopened map so the fresh rings carry records, then scan
    // the sidecar offline through the same path `--flight` uses.
    for (gh::u64 k = 1; k <= 64; ++k) map.put(k, k);
    if (dump_flight(flight_path, "") != 0) {
      std::fprintf(stderr, "gh_stats: flight sidecar scan failed\n");
      return 1;
    }
    if (!s.flight.enabled) {
      std::fprintf(stderr, "gh_stats: snapshot flight section disabled\n");
      return 1;
    }
  }
  const int rc = emit(s, format, /*registry=*/false);
  if (!keep) {
    map.close();
    std::remove(path.c_str());
    std::remove(flight_path.c_str());
  }
  if (rc == 0) std::fprintf(stderr, "gh_stats: selftest OK (obs %s)\n",
                            gh::obs::kEnabled ? "on" : "compiled out");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const gh::Cli cli(argc, argv);
  const std::string format = cli.get_or("format", "text");
  try {
    if (cli.has("selftest")) return selftest(format, cli.has("keep"));
    if (cli.has("flight")) {
      // Accept both --flight=<file> and `--flight <file>` (positional).
      // A bare --flight parses as the flag sentinel "1"; the file is then
      // the first positional argument.
      std::string fpath = cli.get_or("flight", "");
      if (fpath.empty() || fpath == "1") {
        fpath = cli.positional().empty() ? "" : cli.positional().front();
      }
      if (fpath.empty()) {
        std::fprintf(stderr,
                     "usage: gh_stats --flight <file.flight> [--spans=file.spans] "
                     "[--trace=out.json]\n");
        return 2;
      }
      return dump_flight(fpath, cli.get_or("trace", ""), cli.get_or("spans", ""));
    }
    if (cli.has("spans")) {
      return dump_spans(cli.get_or("spans", ""), cli.get_or("trace", ""));
    }
    if (cli.positional().empty()) {
      std::fprintf(stderr,
                   "usage: gh_stats <file.gh> [--format=json|prom|text] [--registry]\n"
                   "       gh_stats --flight <file.flight> [--spans=file.spans] "
                   "[--trace=out.json]\n"
                   "       gh_stats --spans=<file.spans> [--trace=out.json]\n"
                   "       gh_stats --selftest [--format=...] [--keep]\n");
      return 2;
    }
    const std::string& path = cli.positional().front();
    const gh::MapFileInfo info = gh::read_map_file_info(path);
    return info.cell_size == 16
               ? dump<gh::GroupHashMap>(path, format, cli.has("registry"))
               : dump<gh::GroupHashMapWide>(path, format, cli.has("registry"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gh_stats: %s\n", e.what());
    return 2;
  }
}
