// gh_top — live dashboard over a running gh_serve.
//
// Attaches to the stats file gh_serve rewrites every --stats-interval-ms
// (--stats-file=PATH on the serve side), parses the embedded
// gh.obs.timeseries.v1 windows, and renders a refreshing terminal view:
// QPS / p99 / phase-share / migration-cursor sparklines over the buffered
// windows plus the newest window's numbers. No shared memory, no
// sockets: the atomically-renamed file IS the transport, so gh_top can
// run as a different user, after the server died (last file wins), or on
// a copied file.
//
//   gh_top --stats=PATH [--interval-ms=500] [--once] [--iterations=N]
//
// --once renders a single frame without ANSI clearing and prints a
// machine-greppable `qps=<value>` line — the CI smoke asserts a nonzero
// QPS through exactly that. Exit codes: 0 ok, 1 no/invalid stats file.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

using gh::u64;
using gh::usize;
using gh::obs::TimeWindow;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Unicode block sparkline of the series, scaled to its own max.
std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double max = 0;
  for (double v : values) max = v > max ? v : max;
  std::string out;
  for (double v : values) {
    if (max <= 0) {
      out += kBlocks[0];
      continue;
    }
    int idx = static_cast<int>(v / max * 7.0 + 0.5);
    if (idx < 0) idx = 0;
    if (idx > 7) idx = 7;
    out += kBlocks[idx];
  }
  return out;
}

void render(const std::vector<TimeWindow>& windows, bool ansi) {
  if (ansi) std::printf("\x1b[H\x1b[2J");
  const TimeWindow& last = windows.back();
  std::printf("gh_top — %zu windows buffered, newest %llu ms span\n\n",
              windows.size(), static_cast<unsigned long long>(last.dur_ms));

  std::vector<double> qps, p99, mig;
  std::vector<double> shares[gh::obs::kPhases];
  for (const TimeWindow& w : windows) {
    qps.push_back(w.qps);
    p99.push_back(w.p99_ns);
    mig.push_back(w.mig_total > 0
                      ? static_cast<double>(w.mig_cursor) / static_cast<double>(w.mig_total)
                      : 0);
    for (usize p = 0; p < gh::obs::kPhases; ++p) shares[p].push_back(w.phase_share[p]);
  }

  std::printf("  qps   %s  %s\n", sparkline(qps).c_str(),
              gh::format_double(last.qps, 0).c_str());
  std::printf("  p99   %s  %s\n", sparkline(p99).c_str(),
              gh::format_ns(last.p99_ns).c_str());
  std::printf("  p50   %*s  %s\n", static_cast<int>(windows.size()), "",
              gh::format_ns(last.p50_ns).c_str());
  std::printf("\n  phase shares (newest window)\n");
  for (usize p = 0; p < gh::obs::kPhases; ++p) {
    std::printf("  %-12s %s  %5.1f%%\n",
                gh::obs::phase_name(static_cast<gh::obs::Phase>(p)),
                sparkline(shares[p]).c_str(), 100.0 * last.phase_share[p]);
  }
  if (last.mig_active != 0 || last.mig_total != 0) {
    std::printf("\n  migration  %s  cursor %llu / %llu groups%s\n",
                sparkline(mig).c_str(),
                static_cast<unsigned long long>(last.mig_cursor),
                static_cast<unsigned long long>(last.mig_total),
                last.mig_active != 0 ? "  ACTIVE" : "");
  }
  std::printf("\n  load %.3f  ops %llu\n", last.load_factor,
              static_cast<unsigned long long>(last.ops));
}

}  // namespace

int main(int argc, char** argv) {
  const gh::Cli cli(argc, argv);
  std::string stats = cli.get_or("stats", "");
  if (stats.empty() && !cli.positional().empty()) stats = cli.positional().front();
  if (stats.empty()) {
    std::fprintf(stderr,
                 "usage: gh_top --stats=PATH [--interval-ms=500] [--once] "
                 "[--iterations=N]\n");
    return 1;
  }
  const u64 interval_ms = cli.get_u64("interval-ms", 500);
  const bool once = cli.has("once");
  // 0 = run until the stats file disappears (or forever while it lives).
  const u64 iterations = cli.get_u64("iterations", once ? 1 : 0);

  u64 frame = 0;
  u64 misses = 0;
  for (;;) {
    const std::string body = read_file(stats);
    std::vector<TimeWindow> windows;
    const bool parsed = !body.empty() && gh::obs::parse_timeseries_json(body, &windows);
    if (parsed && !windows.empty()) {
      misses = 0;
      render(windows, /*ansi=*/!once);
      if (once) {
        std::printf("qps=%s\n", gh::format_double(windows.back().qps, 0).c_str());
      }
      ++frame;
    } else {
      if (once) {
        std::fprintf(stderr, "gh_top: no parsable timeseries in %s\n", stats.c_str());
        return 1;
      }
      // Live mode tolerates a transient miss (server still warming up or
      // mid-rename) but gives up once the file stays gone.
      if (++misses > 20) {
        std::fprintf(stderr, "gh_top: giving up on %s\n", stats.c_str());
        return 1;
      }
    }
    if (iterations != 0 && frame >= iterations) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
