// wordcount — the Bag-of-Words scenario: count (document, word)
// occurrences and word frequencies over a synthetic Zipf-distributed
// corpus, using GroupHashMap as the aggregation index. Mirrors the
// paper's PubMed-derived trace: keys are DocID<<32|WordID.
//
//   ./wordcount [documents] [words_per_doc]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/group_hash_map.hpp"
#include "trace/zipf.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const gh::u64 documents = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 2000;
  const gh::u64 words_per_doc = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 100;
  constexpr gh::usize kVocabulary = 141043;  // PubMed vocabulary size

  auto pair_counts = gh::GroupHashMap::create_in_memory({.initial_cells = 1 << 14});
  auto word_totals = gh::GroupHashMap::create_in_memory({.initial_cells = 1 << 14});

  gh::Xoshiro256 rng(7);
  const gh::trace::ZipfSampler zipf(kVocabulary, 1.0);

  gh::u64 tokens = 0;
  for (gh::u64 doc = 0; doc < documents; ++doc) {
    for (gh::u64 i = 0; i < words_per_doc; ++i) {
      const gh::u64 word = zipf.sample(rng);
      ++tokens;
      // increment() is a single-probe read-modify-write (8-byte atomic
      // value overwrite), half the lookups of a get+put pair.
      pair_counts.increment(doc << 32 | word);
      word_totals.increment(word);
    }
  }

  std::cout << "corpus: " << gh::format_count(documents) << " documents, "
            << gh::format_count(tokens) << " tokens, vocabulary "
            << gh::format_count(kVocabulary) << "\n"
            << "distinct (doc,word) pairs: " << gh::format_count(pair_counts.size()) << "\n"
            << "distinct words seen:       " << gh::format_count(word_totals.size()) << "\n";

  // Top-10 words by frequency — with a Zipf corpus the head dominates.
  std::vector<std::pair<gh::u64, gh::u64>> words;  // (count, word)
  word_totals.for_each([&](gh::u64 word, gh::u64 count) { words.push_back({count, word}); });
  std::sort(words.rbegin(), words.rend());
  std::cout << "\nrank  word_id  count  share\n";
  for (gh::usize r = 0; r < 10 && r < words.size(); ++r) {
    std::cout << r + 1 << "     w" << words[r].second << "   " << words[r].first << "   "
              << gh::format_double(100.0 * static_cast<double>(words[r].first) /
                                       static_cast<double>(tokens), 2)
              << "%\n";
  }

  // Cross-check: pair counts must sum to the token total.
  gh::u64 sum = 0;
  pair_counts.for_each([&](gh::u64, gh::u64 c) { sum += c; });
  if (sum != tokens) {
    std::cerr << "pair counts do not sum to token count!\n";
    return 1;
  }
  std::cout << "\naggregation cross-check OK (" << gh::format_count(sum) << " tokens)\n";
  return 0;
}
