// trace_replay — record and replay operation traces against any scheme,
// reporting per-op latency percentiles. The evaluation-methodology
// counterpart of the figure benches: generate one of the paper's traces,
// save it to a file, and replay it bit-identically later (or against a
// different scheme) for apples-to-apples comparisons.
//
//   ./trace_replay --generate=RandomNum --ops=20000 --out=/tmp/t.ght
//   ./trace_replay --replay=/tmp/t.ght --scheme=group
//   ./trace_replay --replay=/tmp/t.ght --scheme=path --wal
#include <iostream>

#include "hash/any_table.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "trace/trace_file.hpp"
#include "trace/workload.hpp"
#include "util/cli.hpp"
#include "util/clock.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"

using namespace gh;

namespace {

std::optional<trace::TraceKind> parse_kind(const std::string& s) {
  if (s == "RandomNum") return trace::TraceKind::kRandomNum;
  if (s == "Bag-of-Words" || s == "BagOfWords") return trace::TraceKind::kBagOfWords;
  if (s == "Fingerprint") return trace::TraceKind::kFingerprint;
  return std::nullopt;
}

std::optional<hash::Scheme> parse_scheme(const std::string& s) {
  if (s == "group") return hash::Scheme::kGroup;
  if (s == "group-2h") return hash::Scheme::kGroup2H;
  if (s == "linear") return hash::Scheme::kLinear;
  if (s == "PFHT" || s == "pfht") return hash::Scheme::kPfht;
  if (s == "path") return hash::Scheme::kPath;
  if (s == "cuckoo") return hash::Scheme::kCuckoo;
  if (s == "chained") return hash::Scheme::kChained;
  if (s == "2-choice") return hash::Scheme::kTwoChoice;
  return std::nullopt;
}

int generate(const Cli& cli) {
  const auto kind = parse_kind(cli.get_or("generate", "RandomNum"));
  if (!kind) {
    std::cerr << "unknown trace kind\n";
    return 2;
  }
  const u64 ops = cli.get_u64("ops", 20000);
  const u64 fill = cli.get_u64("fill", ops / 2);
  const u64 seed = cli.get_u64("seed", 42);
  const std::string out = cli.get_or("out", "/tmp/trace.ght");
  const trace::Workload w = trace::make_workload(*kind, fill + ops, seed);
  const trace::OpTrace t = trace::make_op_trace(w, fill, ops, 0.5, 0.2, seed);
  trace::save_trace(t, out);
  std::cout << "wrote " << format_count(t.ops.size()) << " ops (" << w.name << ", "
            << (t.wide_keys ? "128-bit" : "64-bit") << " keys) to " << out << "\n";
  return 0;
}

int replay(const Cli& cli) {
  const trace::OpTrace t = trace::load_trace(cli.get_or("replay", ""));
  const auto scheme = parse_scheme(cli.get_or("scheme", "group"));
  if (!scheme) {
    std::cerr << "unknown scheme\n";
    return 2;
  }
  hash::TableConfig cfg;
  cfg.scheme = *scheme;
  cfg.wide_cells = t.wide_keys;
  cfg.with_wal = cli.has("wal");
  cfg.group_size = static_cast<u32>(cli.get_u64("group_size", 256));
  // Size the table for the trace's peak occupancy with 4x headroom.
  u64 peak = 0, live = 0;
  for (const trace::TraceOp& op : t.ops) {
    if (op.type == trace::OpType::kInsert) peak = std::max(peak, ++live);
    if (op.type == trace::OpType::kDelete && live > 0) --live;
  }
  u32 bits = 12;
  while ((1ull << bits) < peak * 4) ++bits;
  cfg.total_cells_log2 = bits;

  nvm::DirectPM pm(nvm::PersistConfig{
      .flush_latency_ns = cli.get_u64("latency_ns", 300)});
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table =
      hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);

  Histogram insert_h, query_h, delete_h;
  u64 misses = 0;
  Stopwatch total;
  for (const trace::TraceOp& op : t.ops) {
    const u64 t0 = now_ns();
    switch (op.type) {
      case trace::OpType::kInsert:
        table->insert(op.key, op.value);
        insert_h.record(now_ns() - t0);
        break;
      case trace::OpType::kQuery:
        if (!table->find(op.key)) ++misses;
        query_h.record(now_ns() - t0);
        break;
      case trace::OpType::kDelete:
        if (!table->erase(op.key)) ++misses;
        delete_h.record(now_ns() - t0);
        break;
    }
  }
  const double seconds = total.elapsed_s();

  std::cout << "replayed " << format_count(t.ops.size()) << " ops (" << t.name << ") on "
            << cfg.display_name() << " in " << format_double(seconds, 2) << "s ("
            << format_double(static_cast<double>(t.ops.size()) / seconds / 1000.0, 1)
            << " kops/s)\n"
            << "  insert: " << insert_h.summary() << "\n"
            << "  query:  " << query_h.summary() << "\n"
            << "  delete: " << delete_h.summary() << "\n"
            << "  unexpected misses: " << misses << "\n"
            << "  final load factor: " << format_double(table->load_factor(), 3) << "\n"
            << "  nvm: " << pm.stats().to_string() << "\n";
  return misses == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (cli.has("generate")) return generate(cli);
    if (cli.has("replay")) return replay(cli);
  } catch (const std::exception& e) {
    std::cerr << "trace_replay: " << e.what() << "\n";
    return 2;
  }
  std::cout << "usage:\n"
               "  trace_replay --generate=<RandomNum|Bag-of-Words|Fingerprint> "
               "[--ops=N] [--fill=N] [--seed=S] --out=FILE\n"
               "  trace_replay --replay=FILE [--scheme=group|linear|PFHT|path|cuckoo|"
               "group-2h] [--wal] [--latency_ns=300]\n";
  return 2;
}
