// gh_fsck — integrity checker / repair tool for GroupHashMap files,
// the operational face of the paper's recovery story (§3.5).
//
//   ./gh_fsck <file.gh>            # read-only report
//   ./gh_fsck <file.gh> --repair   # run Algorithm-4 recovery, mark clean
//
// The read-only path deliberately bypasses GroupHashMap::open (which
// would auto-recover a dirty file) and attaches to the raw table instead.
#include <iostream>

#include "core/group_hash_map.hpp"
#include "core/inspect.hpp"
#include "core/map_format.hpp"
#include "hash/cells.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

template <class Cell>
int report(const std::string& path, const gh::MapFileInfo& info) {
  using Table = gh::hash::GroupHashTable<Cell, gh::nvm::DirectPM>;
  gh::nvm::NvmRegion region = gh::nvm::NvmRegion::open_file(path);
  gh::nvm::DirectPM pm(gh::nvm::PersistConfig::counting_only());
  Table table = Table::attach(
      pm, region.bytes().subspan(info.table_offset, info.table_bytes));
  const gh::TableInspection scan = gh::inspect(table);

  std::cout << "table geometry:   " << gh::format_count(scan.capacity) << " cells ("
            << gh::format_count(info.level_cells) << " per level), group size "
            << scan.group_size << ", " << info.cell_size << "B cells\n"
            << "occupancy:        " << gh::format_count(scan.scanned_occupied) << " items ("
            << gh::format_double(scan.load_factor(), 3) << " load factor)\n"
            << "  level 1:        " << gh::format_count(scan.level1_occupied) << "\n"
            << "  level 2:        " << gh::format_count(scan.level2_occupied) << "\n"
            << "fullest group:    " << scan.max_group_occupancy << "/" << scan.group_size
            << " level-2 cells (" << scan.full_groups << " groups full)\n"
            << "count field:      " << gh::format_count(scan.count_field)
            << (scan.count_consistent() ? " (consistent)" : " (STALE — needs recovery)")
            << "\n"
            << "torn cells:       " << scan.torn_cells
            << (scan.torn_cells ? " (residual payloads — needs recovery)" : "") << "\n";

  if (!info.clean || !scan.clean()) {
    std::cout << "\nverdict: DIRTY — run with --repair to recover\n";
    return 1;
  }
  std::cout << "\nverdict: clean\n";
  return 0;
}

template <class Map>
int repair(const std::string& path) {
  auto map = Map::open(path);  // recovers if dirty
  std::cout << (map.recovered_on_open() ? "recovery performed" : "file was already clean")
            << "; " << gh::format_count(map.size()) << " items\n";
  map.close();  // marks clean
  std::cout << "marked clean\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const gh::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: gh_fsck <file.gh> [--repair]\n";
    return 2;
  }
  const std::string path = cli.positional()[0];

  try {
    const gh::MapFileInfo info = gh::read_map_file_info(path);
    std::cout << "GroupHashMap file: " << path << "\n"
              << "format version:   " << info.version << "\n"
              << "shutdown state:   " << (info.clean ? "clean" : "DIRTY (crash?)") << "\n";

    if (cli.has("repair")) {
      return info.cell_size == 16 ? repair<gh::GroupHashMap>(path)
                                  : repair<gh::GroupHashMapWide>(path);
    }
    return info.cell_size == 16 ? report<gh::hash::Cell16>(path, info)
                                : report<gh::hash::Cell32>(path, info);
  } catch (const std::exception& e) {
    std::cerr << "gh_fsck: " << e.what() << "\n";
    return 2;
  }
}
