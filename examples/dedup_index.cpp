// dedup_index — a content-fingerprint deduplication index, the scenario
// behind the paper's Fingerprint trace (MD5 digests of files from backup
// snapshots). Chunks a synthetic "snapshot" of files, digests each chunk
// with the library's own MD5, and uses GroupHashMapWide (32-byte cells,
// 16-byte keys) to detect duplicates.
//
//   ./dedup_index [files] [chunks_per_file] [dup_percent]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/group_hash_map.hpp"
#include "trace/md5.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const gh::u64 files = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 200;
  const gh::u64 chunks_per_file = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 64;
  const gh::u64 dup_percent = argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 30;

  auto index = gh::GroupHashMapWide::create_in_memory(
      {.initial_cells = 1 << 12});  // grows as the snapshot is ingested

  gh::Xoshiro256 rng(2024);
  gh::u64 total_chunks = 0, duplicate_chunks = 0, bytes_logical = 0, bytes_stored = 0;
  constexpr gh::u64 kChunkBytes = 4096;

  std::vector<gh::u8> chunk(kChunkBytes);
  for (gh::u64 f = 0; f < files; ++f) {
    for (gh::u64 c = 0; c < chunks_per_file; ++c) {
      // With probability dup_percent, reuse an earlier chunk's content
      // (same seed); otherwise generate fresh content.
      const bool duplicate = total_chunks > 0 && rng.next_below(100) < dup_percent;
      const gh::u64 content_seed =
          duplicate ? rng.next_below(total_chunks) : total_chunks;
      gh::Xoshiro256 content(content_seed * 2654435761u + 1);
      for (auto& b : chunk) b = static_cast<gh::u8>(content.next());

      gh::trace::Md5 md5;
      md5.update(chunk.data(), chunk.size());
      const gh::Key128 fingerprint = gh::trace::Md5::to_key(md5.finish());

      ++total_chunks;
      bytes_logical += kChunkBytes;
      if (const auto refcount = index.get(fingerprint)) {
        ++duplicate_chunks;
        index.put(fingerprint, *refcount + 1);  // bump the reference count
      } else {
        index.put(fingerprint, 1);
        bytes_stored += kChunkBytes;
      }
    }
  }

  std::cout << "dedup index over " << files << " files x " << chunks_per_file
            << " chunks (" << dup_percent << "% duplication target)\n"
            << "  chunks ingested:   " << gh::format_count(total_chunks) << "\n"
            << "  unique chunks:     " << gh::format_count(index.size()) << "\n"
            << "  duplicates found:  " << gh::format_count(duplicate_chunks) << "\n"
            << "  logical bytes:     " << gh::format_bytes(bytes_logical) << "\n"
            << "  stored bytes:      " << gh::format_bytes(bytes_stored) << "\n"
            << "  dedup ratio:       "
            << gh::format_double(static_cast<double>(bytes_logical) /
                                     static_cast<double>(bytes_stored), 2)
            << "x\n"
            << "  index load factor: " << gh::format_double(index.load_factor(), 3) << "\n";

  // Sanity: the reference counts must sum to the chunk total.
  gh::u64 refs = 0;
  index.for_each([&](const gh::Key128&, gh::u64 refcount) { refs += refcount; });
  if (refs != total_chunks) {
    std::cerr << "reference counts do not sum to chunk total!\n";
    return 1;
  }
  std::cout << "refcount sum check OK\n";
  return 0;
}
