// kv_store — a memcached-flavoured persistent key-value store REPL on top
// of PersistentStringMap (the workload class that motivates the paper:
// small items, hash lookups, persistence across restarts).
//
//   ./kv_store /tmp/store.gh            # interactive
//   echo "set k 1\nget k" | ./kv_store  # scripted
//
// Commands: set <key> <value> | get <key> | del <key> | keys | stats |
//           compact | quit
// Keys are arbitrary strings (stored verbatim in the persistent arena and
// verified on every lookup); values are u64.
#include <iostream>
#include <sstream>
#include <string>

#include "core/string_map.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/kv_store.gh";

  auto map = [&] {
    try {
      auto opened = gh::PersistentStringMap::open(path);
      std::cout << "# opened " << path << " with " << opened.size() << " entries"
                << (opened.recovered_on_open() ? " (recovered after crash)" : "") << "\n";
      return opened;
    } catch (const std::exception&) {
      std::cout << "# created " << path << "\n";
      return gh::PersistentStringMap::create(path, {.initial_cells = 1 << 12});
    }
  }();

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "set") {
      std::string key;
      gh::u64 value = 0;
      if (!(in >> key >> value)) {
        std::cout << "ERR usage: set <key> <u64>\n";
        continue;
      }
      map.put(key, value);
      std::cout << "STORED\n";
    } else if (cmd == "get") {
      std::string key;
      if (!(in >> key)) {
        std::cout << "ERR usage: get <key>\n";
        continue;
      }
      const auto v = map.get(key);
      if (v) {
        std::cout << "VALUE " << *v << "\n";
      } else {
        std::cout << "NOT_FOUND\n";
      }
    } else if (cmd == "del") {
      std::string key;
      if (!(in >> key)) {
        std::cout << "ERR usage: del <key>\n";
        continue;
      }
      std::cout << (map.erase(key) ? "DELETED\n" : "NOT_FOUND\n");
    } else if (cmd == "keys") {
      map.for_each([](std::string_view key, gh::u64 value) {
        std::cout << key << " -> " << value << "\n";
      });
    } else if (cmd == "stats") {
      const gh::StringMapStats s = map.stats();
      std::cout << "entries " << s.items << "\n"
                << "table_capacity " << s.table_capacity << "\n"
                << "arena_used " << gh::format_bytes(s.arena_used) << "\n"
                << "arena_live " << gh::format_bytes(s.arena_live) << "\n"
                << "arena_capacity " << gh::format_bytes(s.arena_capacity) << "\n"
                << "compactions " << s.compactions << "\n"
                << "recoveries " << s.recoveries << "\n";
    } else if (cmd == "compact") {
      map.compact();
      std::cout << "OK arena_used now " << gh::format_bytes(map.stats().arena_used)
                << "\n";
    } else {
      std::cout << "ERR unknown command '" << cmd << "'\n";
    }
  }
  map.close();
  std::cout << "# closed cleanly\n";
  return 0;
}
