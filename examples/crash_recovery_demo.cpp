// crash_recovery_demo — walks through the paper's consistency story on
// the crash simulator: an insert is interrupted at every point of its
// commit protocol, the durable NVM image is materialised, recovery
// (Algorithm 4) runs, and the resulting state is printed. Watch the
// in-flight item be either fully present or fully absent — never torn.
#include <iostream>

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"
#include "util/format.hpp"

using namespace gh;
using Table = hash::GroupHashTable<hash::Cell16, nvm::ShadowPM>;

namespace {

const char* phase_name(u64 event_offset) {
  switch (event_offset) {
    case 0:
      return "before the value store";
    case 1:
      return "after value store, before its flush";
    case 2:
      return "after value flush, before the 8-byte commit";
    case 3:
      return "after the commit store, before its flush";
    case 4:
      return "after commit flush, before the count update";
    case 5:
      return "after count store, before its flush";
    default:
      return "after the operation completed";
  }
}

}  // namespace

int main() {
  const Table::Params params{.level_cells = 1024, .group_size = 64};
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(Table::required_bytes(params));
  auto mem = region.bytes().first(Table::required_bytes(params));

  std::cout << "Group hashing crash-recovery walkthrough\n"
            << "(simulated NVM: only flushed cachelines survive a crash)\n\n";

  // Learn the event window of one insert with a dry run.
  u64 op_start = 0, op_end = 0;
  {
    nvm::ShadowPM pm(mem);
    Table table(pm, mem, params, /*format=*/true);
    for (u64 k = 1; k <= 10; ++k) table.insert(k, k * 100);
    op_start = pm.event_count();
    table.insert(777, 77700);
    op_end = pm.event_count();
  }
  std::cout << "an insert spans " << (op_end - op_start)
            << " NVM events (stores + flushes)\n\n";

  for (u64 crash_at = op_start; crash_at <= op_end; ++crash_at) {
    std::fill(mem.begin(), mem.end(), std::byte{0});
    nvm::ShadowPM pm(mem);
    Table table(pm, mem, params, /*format=*/true);
    for (u64 k = 1; k <= 10; ++k) table.insert(k, k * 100);

    bool crashed = false;
    if (crash_at < op_end) pm.crash_at_event(crash_at);
    try {
      table.insert(777, 77700);
    } catch (const nvm::SimulatedCrash&) {
      crashed = true;
    }
    pm.crash_at_event(nvm::ShadowPM::no_crash());

    // Power is gone: materialise what NVM actually holds and reboot.
    const auto image = pm.materialize_crash_image(nvm::CrashMode::kNothingEvicted);
    pm.reset_to_image(image);
    Table rebooted = Table::attach(pm, mem);
    const auto report = rebooted.recover();

    const auto v = rebooted.find(777);
    std::cout << "crash " << phase_name(crash_at - op_start) << ": "
              << (crashed ? "power lost mid-insert" : "insert completed") << " -> "
              << "recovered count=" << rebooted.count() << ", scrubbed "
              << report.cells_scrubbed << " torn cell(s), key 777 "
              << (v ? ("PRESENT (value " + std::to_string(*v) + ")") : "ABSENT") << "\n";

    // The ten committed items must always survive.
    for (u64 k = 1; k <= 10; ++k) {
      if (!rebooted.find(k) || *rebooted.find(k) != k * 100) {
        std::cerr << "LOST COMMITTED DATA — this must never happen\n";
        return 1;
      }
    }
    if (v && *v != 77700) {
      std::cerr << "TORN VALUE — this must never happen\n";
      return 1;
    }
  }

  std::cout << "\nAll crash points recovered to a consistent state. "
               "The in-flight insert is atomic: present with its exact value, or absent.\n";
  return 0;
}
