// Quickstart — the 60-second tour of the GroupHashMap public API:
// create a persistent map, insert/lookup/delete, close it cleanly,
// reopen it, and inspect metrics.
//
//   ./quickstart [path]
#include <iostream>

#include "core/group_hash_map.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/quickstart.gh";

  // --- Session 1: create and populate -------------------------------------
  {
    gh::MapOptions options;
    options.initial_cells = 1 << 12;  // 4096 cells to start; grows on demand
    options.group_size = 256;         // the paper's default
    auto map = gh::GroupHashMap::create(path, options);

    for (gh::u64 user_id = 1; user_id <= 1000; ++user_id) {
      map.put(user_id, /*score=*/user_id * 17 % 1000);
    }
    map.put(42, 99999);  // put() is an upsert
    map.erase(7);

    std::cout << "session 1: " << map.size() << " entries, load factor "
              << gh::format_double(map.load_factor(), 3) << "\n";
    std::cout << "user 42 -> " << *map.get(42) << "\n";
    std::cout << "user 7  -> " << (map.get(7) ? "present" : "deleted") << "\n";

    const gh::MapMetrics& m = map.metrics();
    std::cout << "NVM traffic: " << m.persist.lines_flushed << " cacheline flushes, "
              << gh::format_bytes(m.persist.bytes_written) << " written, "
              << m.expansions << " expansions\n";

    map.close();  // marks the file clean
  }

  // --- Session 2: reopen --------------------------------------------------
  {
    auto map = gh::GroupHashMap::open(path);
    std::cout << "session 2: reopened with " << map.size() << " entries"
              << (map.recovered_on_open() ? " (after crash recovery)" : " (clean)") << "\n";
    std::cout << "user 42 -> " << *map.get(42) << " (durable)\n";
  }

  // 128-bit keys work the same way via GroupHashMapWide:
  {
    auto wide = gh::GroupHashMapWide::create_in_memory({});
    wide.put(gh::Key128{0xdeadbeef, 0xcafe}, 1);
    std::cout << "wide map: " << wide.size() << " entry\n";
  }

  std::cout << "quickstart OK\n";
  return 0;
}
